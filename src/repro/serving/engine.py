"""Discrete-event serving loop: colocated and prefill/decode-disaggregated.

The engine steps a GPU pool through *iterations* the way a real continuous
batching server does: every iteration executes one decode token for each
running request plus the prefill chunks admitted under the token budget, and
the iteration's duration comes from the same :class:`~repro.model.costs.CostModel`
the training simulator uses (the per-pass arithmetic-intensity roll-off is
what makes small decode batches launch/bandwidth-bound, and a mixed
prefill+decode iteration as slow as its combined FLOPs demand).

Two deployments are modelled:

* :class:`ServingEngine` — the **colocated** baseline: one pool runs prefill
  and decode together.  When ``ServingConfig.tpot_cap`` is set (the default
  path wires in the scenario's TPOT SLO), the engine performs SLO-aware
  chunked prefill: each iteration's prefill budget is shrunk — by inverting
  the cost model — so the iteration stays under the cap and running decodes
  keep their inter-token latency.  Protecting TPOT is exactly what throttles
  prefill throughput under bursts of long prompts.
* :class:`DisaggregatedEngine` — prefill and decode run on **separate
  pools**; finished prefill contexts are handed to the decode pool after a
  KV-transfer delay priced by :class:`~repro.hardware.comm.CommModel`
  (NVLink when both pools share a node, NIC otherwise).  The prefill pool
  needs no TPOT cap — it runs no decodes — which is the mechanism behind its
  lower tail TTFT.

Capacity is derived, not configured: per-GPU HBM minus bf16 weights minus an
activation reserve, divided into fixed-size KV blocks priced by
:func:`~repro.model.memory.kv_cache_bytes_per_token_per_layer`.

Decode fast-forwarding
----------------------
Most iterations of a drained trace are *pure decode over a stable batch*: no
request waiting, no prefill chunk in flight, nothing finishing, no KV block
pressure.  Stepping those one at a time re-runs the scheduler, the SLO
budget search and the FLOPs pricing only to conclude "the same batch decodes
one more token".  With ``ServingConfig.fast_forward`` (the default) the pool
detects such a stretch, bounds its safe length analytically (next arrival,
first finishing request, first un-satisfiable KV-block growth) and executes
it in one coalesced inner loop that replays *bit-identical* per-iteration
arithmetic — durations, KV-utilization integrals and timestamps come out
byte-equal to the naive stepper, which stays available as the reference
oracle via ``fast_forward=False``.  Iteration pricing itself is memoized on
the exact batch composition (prefill chunks/offsets plus decode context
lengths), so repeated compositions cost a dict lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..hardware.comm import CommModel
from ..hardware.gpu import GPUSpec, HOPPER_80GB
from ..hardware.topology import ClusterTopology
from ..model.config import ModelConfig
from ..obs import events as obs_events
from ..obs.events import EventRecorder
from ..model.costs import CostModel, PassKind
from ..model.flops import FlopsBreakdown, layer_forward_flops, output_layer_flops
from ..model.memory import kv_cache_bytes_per_token_per_layer
from ..schedules.base import Pass
from ..sim.timeline import Timeline, TimelineSpan
from .batcher import BatcherConfig, ContinuousBatcher, IterationPlan, Phase, RequestState
from .columnar import DecodeColumns
from .metrics import (
    SLO,
    RequestRecord,
    ServingMetrics,
    StreamingMetrics,
    TenantMetrics,
    compute_metrics,
    compute_tenant_metrics,
)
from .paged_kv import PagedKVAllocator
from .tenancy import TenancyConfig
from .workload import Request

__all__ = ["ServingConfig", "ServingResult", "ServingEngine", "DisaggregatedEngine"]


@dataclass(frozen=True)
class ServingConfig:
    """Static configuration of a serving deployment."""

    num_gpus: int = 8
    gpu: GPUSpec = field(default=HOPPER_80GB)
    block_tokens: int = 256
    batcher: BatcherConfig = field(default_factory=BatcherConfig)
    memory_utilization: float = 0.90
    activation_reserve_fraction: float = 0.05
    iteration_overhead: float = 100e-6
    tpot_cap: Optional[float] = None
    max_iterations: int = 2_000_000
    #: Coalesce stable pure-decode stretches into one inner loop (exact; see
    #: the module docstring).  ``False`` forces the naive one-iteration-at-a-
    #: time reference stepper.
    fast_forward: bool = True
    #: Keep every :class:`RequestRecord` (and the iteration timeline) in the
    #: result.  ``True`` — the default — is the byte-identical record-based
    #: path every golden and the obs/diagnosis layer depend on.  ``False``
    #: streams: arrivals are pulled lazily from the trace iterable, finished
    #: requests fold into a :class:`~repro.serving.metrics.StreamingMetrics`
    #: accumulator and are dropped, so memory stays bounded no matter how
    #: many requests the trace holds (massive-* scenarios).  Requires the
    #: colocated engine; record consumers (``--explain``, attribution,
    #: ``--diff-against``) need ``True``.
    retain_records: bool = True
    #: Shared-prefix KV caching: requests whose prompts declare a shared
    #: prefix (:attr:`~repro.serving.workload.Request.prefix`) skip prefill
    #: for cached prefix blocks, which are reference-counted in a radix tree
    #: (:mod:`repro.serving.prefix_cache`) and evicted LRU-first only under
    #: memory pressure.  Off by default: with ``False`` every simulated
    #: number is byte-identical to the pre-prefix engine.
    prefix_caching: bool = False
    #: Opt-in observability: an :class:`~repro.obs.events.EventRecorder` the
    #: engine emits lifecycle events into.  ``None`` (the default) keeps the
    #: hot path untouched — every emit site is guarded — so all simulated
    #: numbers are byte-identical with the recorder absent.  Excluded from
    #: equality/hash: two configs that simulate identically compare equal.
    observe: Optional[EventRecorder] = field(default=None, compare=False, repr=False)
    #: Multi-tenant QoS contract table (:mod:`repro.serving.tenancy`):
    #: per-tenant SLO classes, fair-share weights and token-bucket rate
    #: limits.  ``None`` — the default — disables admission control and
    #: per-tenant SLO overrides entirely; combined with the default
    #: scheduling policy every simulated number is byte-identical to the
    #: pre-tenancy engine (pinned by ``tests/test_tenancy_properties.py``).
    tenancy: Optional[TenancyConfig] = None

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if self.block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        if not 0.0 < self.memory_utilization <= 1.0:
            raise ValueError("memory_utilization must be in (0, 1]")
        if not 0.0 <= self.activation_reserve_fraction < 1.0:
            raise ValueError("activation_reserve_fraction must be in [0, 1)")
        if self.tpot_cap is not None and self.tpot_cap <= 0:
            raise ValueError("tpot_cap must be positive when given")


@dataclass
class ServingResult:
    """Everything one simulated serving run produced."""

    mode: str
    metrics: ServingMetrics
    records: List[RequestRecord]
    timeline: Timeline
    iterations: int
    kv_capacity_tokens: int
    tokens_admitted: int
    tokens_prefilled: int
    tokens_preempted_requeued: int
    preemptions: int
    #: Shared-prefix caching outcomes (all zero when ``prefix_caching=False``).
    prefix_hit_tokens: int = 0
    prefix_hit_requests: int = 0
    prefix_flops_saved: float = 0.0
    prefill_flops_executed: float = 0.0
    prefix_evictions: int = 0
    #: ``False`` when the run streamed: ``records`` is empty and ``timeline``
    #: has no spans — metrics came from a bounded-memory accumulator instead.
    retain_records: bool = True
    #: Per-tenant aggregates, keyed by tenant name.  Empty unless the trace
    #: carried tenant tags (both record-based and streaming paths fill it).
    tenant_metrics: Dict[str, TenantMetrics] = field(default_factory=dict)

    @property
    def token_accounting_balanced(self) -> bool:
        """The engine's conservation law over a fully drained trace."""
        return self.tokens_admitted == self.tokens_prefilled + self.tokens_preempted_requeued

    @property
    def prefix_hit_rate(self) -> float:
        """Fraction of required prompt tokens served from the prefix cache."""
        required = self.prefix_hit_tokens + self.tokens_prefilled
        return self.prefix_hit_tokens / required if required else 0.0


@dataclass
class _PoolRun:
    """Outcome of draining one pool."""

    end_time: float
    departed: List[RequestState]
    iterations: int
    kv_mean: float
    kv_peak: float
    busy_time: float


#: Decode-batch size above which the stretch planner switches from the
#: scalar growth fold to the columnar (numpy) plan.  Below it, array
#: construction costs more than it saves; both paths are integer-exact and
#: interchangeable (pinned by the fast-forward equivalence suite).
COLUMNAR_MIN_BATCH = 64


@lru_cache(maxsize=1 << 17)
def _decode_flops_cached(model: ModelConfig, context_tokens: int) -> FlopsBreakdown:
    """One decode step's FLOPs (one query token over ``context_tokens`` keys)."""
    flops = layer_forward_flops(model, 1, context_tokens) * model.num_layers
    return flops + output_layer_flops(model, 1)


@lru_cache(maxsize=1 << 16)
def _prefill_flops_cached(
    model: ModelConfig, chunk: int, kv_offset: int, completes: bool
) -> FlopsBreakdown:
    """One prefill chunk's FLOPs (plus the sampling head when it completes)."""
    flops = layer_forward_flops(model, chunk, kv_offset) * model.num_layers
    if completes:
        flops = flops + output_layer_flops(model, 1)
    return flops


class _Pool:
    """One GPU pool: allocator + batcher + cost model + event loop."""

    def __init__(
        self,
        model: ModelConfig,
        num_gpus: int,
        config: ServingConfig,
        cost_model: Optional[CostModel] = None,
        prefill_only: bool = False,
        decode_only: bool = False,
    ):
        self.model = model
        self.num_gpus = num_gpus
        self.config = config
        self.costs = cost_model or CostModel(config.gpu)
        self.total_kv_blocks = self._kv_blocks()
        # A decode-only pool never prefills, so prefix caching has nothing to
        # skip there; the prefill pool of a disaggregated pair gets it.
        self.allocator = PagedKVAllocator(
            self.total_kv_blocks,
            config.block_tokens,
            prefix_caching=config.prefix_caching and not decode_only,
        )
        num_layers = model.num_layers

        def prefill_flops_of(chunk: int, kv_offset: int) -> float:
            """Layer FLOPs of one prefill chunk (sampling head excluded)."""
            return (layer_forward_flops(model, chunk, kv_offset) * num_layers).total

        self.batcher = ContinuousBatcher(
            self.allocator,
            config.batcher,
            prefill_only=prefill_only,
            decode_only=decode_only,
            prefill_flops_of=prefill_flops_of,
            tenancy=config.tenancy,
        )
        # Observability (None keeps every emit site dormant).  The batcher
        # shares the pool's recorder; its track id is set when the pool runs
        # (or, for fleet pools, to the owning replica's id).
        self.obs = config.observe
        self.batcher.obs = self.obs
        if prefill_only:
            self.track_name = "prefill pool"
        elif decode_only:
            self.track_name = "decode pool"
        else:
            self.track_name = "pool"
        # Subclassed cost models may override ``time_of``; only the pristine
        # CostModel is safe to inline (and hence to fast-forward through).
        self.exact_pricing = type(self.costs) is CostModel
        gpu = self.costs.gpu
        self._inv_gpus = 1.0 / self.num_gpus
        self._fwd_linear_rate = gpu.peak_flops * gpu.gemm_efficiency_forward
        self._fwd_attention_rate = gpu.peak_flops * gpu.attention_efficiency_forward
        self._intensity_knee = gpu.intensity_tokens
        self._launch_overhead = gpu.kernel_launch_overhead
        # (linear, attention) FLOPs component pairs per decode context length,
        # and memoized iteration durations per exact batch composition.
        self._decode_pairs: Dict[int, Tuple[float, float]] = {}
        self._duration_cache: Dict[tuple, float] = {}
        # Columnar snapshot of the batch behind the most recent successful
        # stretch plan; the stretch executor reuses it for the bulk commit.
        self._stretch_columns: Optional[DecodeColumns] = None

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    def _kv_blocks(self) -> int:
        cfg = self.config
        weights_per_gpu = self.model.total_params() * 2.0 / self.num_gpus
        budget = cfg.gpu.memory_bytes * cfg.memory_utilization
        headroom = budget - weights_per_gpu - cfg.gpu.memory_bytes * cfg.activation_reserve_fraction
        if headroom <= 0:
            raise ValueError(
                f"{self.model.name} does not fit {self.num_gpus} x "
                f"{cfg.gpu.name}: weights need "
                f"{weights_per_gpu / 2**30:.0f} GiB/GPU of "
                f"{budget / 2**30:.0f} GiB usable"
            )
        kv_per_token_per_gpu = (
            kv_cache_bytes_per_token_per_layer(self.model, tensor_parallel_size=self.num_gpus)
            * self.model.num_layers
        )
        blocks = int(headroom // (cfg.block_tokens * kv_per_token_per_gpu))
        if blocks < 1:
            raise ValueError("KV headroom is below one block; reduce block_tokens")
        return blocks

    @property
    def kv_capacity_tokens(self) -> int:
        return self.total_kv_blocks * self.config.block_tokens

    # ------------------------------------------------------------------
    # Iteration pricing
    # ------------------------------------------------------------------
    def _prefill_flops(self, chunk: int, kv_offset: int, completes: bool) -> FlopsBreakdown:
        return _prefill_flops_cached(self.model, chunk, kv_offset, completes)

    def _decode_flops(self, context_tokens: int) -> FlopsBreakdown:
        return _decode_flops_cached(self.model, context_tokens)

    def _decode_pair(self, context_tokens: int) -> Tuple[float, float]:
        pair = self._decode_pairs.get(context_tokens)
        if pair is None:
            flops = _decode_flops_cached(self.model, context_tokens)
            pair = (flops.linear, flops.attention)
            self._decode_pairs[context_tokens] = pair
        return pair

    def _pair_time(self, linear: float, attention: float, batch_tokens: int) -> float:
        """Iteration duration from summed (linear, attention) FLOPs components.

        Bit-for-bit the same arithmetic as building the
        :class:`~repro.model.flops.FlopsBreakdown`, scaling it by
        ``1/num_gpus`` and calling :meth:`CostModel.time_of` with the forward
        pass kind — every multiply, divide and add happens in the same order
        on the same values — just without the intermediate value objects.
        Only valid when ``self.exact_pricing`` (pristine :class:`CostModel`).
        """
        if linear + attention <= 0:
            return self.config.iteration_overhead
        linear = linear * self._inv_gpus
        attention = attention * self._inv_gpus
        if batch_tokens <= 0:
            factor = 1.0
        else:
            factor = batch_tokens / (batch_tokens + self._intensity_knee)
        total = linear / (self._fwd_linear_rate * factor) + attention / (
            self._fwd_attention_rate * factor
        )
        if linear > 0 or attention > 0:
            total += self._launch_overhead
        return total + self.config.iteration_overhead

    def decode_iteration_time(self, contexts: Sequence[int]) -> float:
        """Duration of one pure-decode iteration over the given contexts."""
        linear = 0.0
        attention = 0.0
        pairs = self._decode_pairs
        for context in contexts:
            pair = pairs.get(context)
            if pair is None:
                pair = self._decode_pair(context)
            linear += pair[0]
            attention += pair[1]
        return self._pair_time(linear, attention, len(contexts))

    def iteration_time(self, plan: IterationPlan) -> float:
        if not self.exact_pricing:
            return self._iteration_time_reference(plan)
        # Memoize on the exact batch composition: the FLOPs fold depends only
        # on the ordered prefill (chunk, offset, completes) triples and the
        # ordered decode context lengths, and the roll-off on batch_tokens,
        # which those determine.
        key = (
            tuple(
                (chunk, state.prefilled, state.prefilled + chunk >= state.prefill_target)
                for state, chunk in plan.prefill
            ),
            tuple(state.context_tokens for state in plan.decode),
        )
        duration = self._duration_cache.get(key)
        if duration is None:
            linear = 0.0
            attention = 0.0
            for chunk, offset, completes in key[0]:
                flops = _prefill_flops_cached(self.model, chunk, offset, completes)
                linear += flops.linear
                attention += flops.attention
            for context in key[1]:
                pair = self._decode_pair(context)
                linear += pair[0]
                attention += pair[1]
            duration = self._pair_time(linear, attention, plan.batch_tokens)
            # Keys are O(batch) tuples and unique compositions scale with the
            # iteration count, so a large bound makes peak memory grow with
            # trace length.  The memo's value is within-iteration reuse (the
            # prefill-budget search prices ~10 candidate plans per iteration);
            # cross-iteration repeats are rare at scale, so a small bound
            # keeps peak memory flat with no measurable throughput cost.
            if len(self._duration_cache) >= (1 << 12):
                self._duration_cache.clear()
            self._duration_cache[key] = duration
        return duration

    def _iteration_time_reference(self, plan: IterationPlan) -> float:
        """The original object-folding pricing (kept for cost-model subclasses)."""
        flops = FlopsBreakdown()
        for state, chunk in plan.prefill:
            completes = state.prefilled + chunk >= state.prefill_target
            flops = flops + self._prefill_flops(chunk, state.prefilled, completes)
        for state in plan.decode:
            flops = flops + self._decode_flops(state.context_tokens)
        if flops.total <= 0:
            return self.config.iteration_overhead
        flops = flops * (1.0 / self.num_gpus)
        return (
            self.costs.time_of(flops, PassKind.FORWARD, tokens=plan.batch_tokens)
            + self.config.iteration_overhead
        )

    def prefill_budget(self) -> Optional[int]:
        """SLO-aware prefill budget for the next iteration.

        Inverts the cost model: the largest prefill token count that keeps
        the iteration — decode steps included — under ``tpot_cap``.  Returns
        ``None`` (no throttle) when the cap is unset or nothing is decoding;
        never throttles below the batcher's minimum chunk, so prefill cannot
        starve outright.
        """
        cap = self.config.tpot_cap
        if cap is None or self.batcher.decode_only:
            return None
        decodes = [s for s in self.batcher.running if s.phase is Phase.DECODE]
        if not decodes:
            return None
        # Price the hypothetical chunk at the deepest in-flight prefill
        # offset: long contexts make the chunk's attention cost dwarf its
        # linear cost, and estimating at offset 0 would approve budgets that
        # blow the cap by orders of magnitude at 512K contexts.
        kv_offset = max(
            (s.prefilled for s in self.batcher.running if s.phase is Phase.PREFILL),
            default=0,
        )
        num_decodes = len(decodes)

        if self.exact_pricing:
            # Same fold, same arithmetic as the reference branch below, on
            # cached component pairs (this estimator runs on every iteration
            # with a running decode, so it is as hot as the pricing itself).
            base_linear = 0.0
            base_attention = 0.0
            for state in decodes:
                pair = self._decode_pair(state.context_tokens)
                base_linear += pair[0]
                base_attention += pair[1]
            num_layers = self.model.num_layers

            def estimate(prefill_tokens: int) -> float:
                chunk = layer_forward_flops(self.model, prefill_tokens, kv_offset)
                return self._pair_time(
                    base_linear + chunk.linear * num_layers,
                    base_attention + chunk.attention * num_layers,
                    prefill_tokens + num_decodes,
                )

        else:
            base = FlopsBreakdown()
            for state in decodes:
                base = base + self._decode_flops(state.context_tokens)

            def estimate(prefill_tokens: int) -> float:
                flops = base + layer_forward_flops(self.model, prefill_tokens, kv_offset) * self.model.num_layers
                flops = flops * (1.0 / self.num_gpus)
                return (
                    self.costs.time_of(
                        flops, PassKind.FORWARD, tokens=prefill_tokens + num_decodes
                    )
                    + self.config.iteration_overhead
                )

        floor = self.config.batcher.min_prefill_chunk_tokens
        ceiling = self.config.batcher.max_batch_tokens
        if estimate(floor) > cap:
            return floor
        if estimate(ceiling) <= cap:
            return ceiling
        lo, hi = floor, ceiling
        while hi - lo > 64:
            mid = (lo + hi) // 2
            if estimate(mid) <= cap:
                lo = mid
            else:
                hi = mid
        return lo

    # ------------------------------------------------------------------
    # Decode fast-forwarding
    # ------------------------------------------------------------------
    def decode_stretch_length(self) -> int:
        """Iterations the current batch can decode without a structural event.

        Zero when the batch is not a stable pure-decode set (work waiting,
        prefill in flight, empty pool, batch over the token budget, or the
        pricing cannot be inlined).  Otherwise the bound is the tightest of

        * the first request to finish (its final iteration runs naively so
          departure bookkeeping stays on the reference path), and
        * the first decode step whose KV-block growth the pool cannot
          satisfy (that iteration must go through preemption planning).

        Arrivals are the caller's bound: the stretch executor stops as soon
        as simulated time reaches the next arrival.
        """
        if not (self.config.fast_forward and self.exact_pricing):
            return 0
        batcher = self.batcher
        if batcher.waiting:
            return 0
        running = batcher.running
        n = len(running)
        if n == 0 or n > self.config.batcher.max_batch_tokens:
            return 0
        allocator = self.allocator
        limit: Optional[int] = None
        for state in running:
            if state.phase is not Phase.DECODE:
                return 0
            # The stretch arithmetic assumes the steady decode invariant
            # "reservation == context - 1" (the token being generated claims
            # its slot next step).  A request that just re-prefilled a
            # crash-transferred context still reserves its full context until
            # its first decode commit — step that iteration naively.
            if allocator.tokens_of(state.request.request_id) != state.context_tokens - 1:
                return 0
            remaining = state.request.output_tokens - state.decoded
            if limit is None or remaining < limit:
                limit = remaining
        steps = limit - 1
        if steps < 1:
            return 0
        if n < COLUMNAR_MIN_BATCH:
            # Small batches: the scalar fold beats the columnar plan's numpy
            # array construction (fleet replicas and chat-scale pools live
            # here), and the common case needs exactly one growth probe.
            self._stretch_columns = None
            contexts = [state.context_tokens for state in running]
            block_tokens = allocator.block_tokens
            held = [allocator.blocks_held(state.request.request_id) for state in running]
            free = allocator.free_blocks

            def growth(step: int) -> int:
                """Extra blocks needed by the reservations of iteration ``step``."""
                need = 0
                for context, blocks in zip(contexts, held):
                    extra = (context + step + block_tokens - 1) // block_tokens - blocks
                    if extra > 0:
                        need += extra
                return need

            # ``free`` excludes unreferenced shared prefix blocks on purpose:
            # a step that would have to reclaim cache space must run on the
            # naive path (reclamation changes stored tokens, which the
            # stretch tracks incrementally).
            if growth(steps - 1) > free:
                if growth(0) > free:
                    return 0  # the very next decode step already needs preemption
                low, high = 0, steps - 1  # growth(low) fits, growth(high) does not
                while high - low > 1:
                    mid = (low + high) // 2
                    if growth(mid) <= free:
                        low = mid
                    else:
                        high = mid
                steps = low + 1
            return steps
        # Columnar plan: context lengths and blocks held become int64 arrays,
        # so the KV-growth bound (and later the commit's reservation plan)
        # are vectorized folds — integer arithmetic, hence still bit-exact.
        columns = DecodeColumns(
            [state.request.request_id for state in running],
            [state.context_tokens for state in running],
            [allocator.blocks_held(state.request.request_id) for state in running],
            allocator.block_tokens,
        )
        # ``free_blocks`` excludes unreferenced shared prefix blocks on
        # purpose: a step that would have to reclaim cache space must run on
        # the naive path (reclamation changes stored tokens, which the
        # stretch tracks incrementally).
        steps = columns.stretch_bound(steps, allocator.free_blocks)
        if steps > 0:
            self._stretch_columns = columns
        return steps

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def run(
        self,
        states: Union[Sequence[RequestState], Iterator[RequestState]],
        timeline: Optional[Timeline] = None,
        device: int = 0,
        on_depart: Optional[Callable[[RequestState], None]] = None,
    ) -> _PoolRun:
        if isinstance(states, Sequence):
            stream: Iterator[RequestState] = iter(
                sorted(states, key=lambda s: (s.pool_arrival, s.request.request_id))
            )
        else:
            # Streaming input: states are pulled one at a time, so the pool
            # never materializes the trace.  The caller guarantees
            # non-decreasing ``pool_arrival`` order (the engines validate).
            stream = iter(states)
        upcoming = next(stream, None)
        now = 0.0
        iterations = 0
        departed: List[RequestState] = []
        kv_weighted = 0.0
        kv_time = 0.0
        kv_peak = 0.0
        batcher = self.batcher
        allocator = self.allocator
        capacity_tokens = allocator.total_blocks * allocator.block_tokens
        max_iterations = self.config.max_iterations
        obs = self.obs
        prof = obs.profiler if obs is not None else None
        if obs is not None:
            obs.register_track(device, self.track_name)
            batcher.obs_track = device
        # Token buckets refill against the batcher's clock, so it must track
        # simulated time whenever admission control is live (the recorder
        # needs it for event timestamps anyway).
        track_now = obs is not None or bool(batcher._buckets)
        while True:
            while upcoming is not None and upcoming.pool_arrival <= now + 1e-12:
                batcher.enqueue(upcoming)
                if obs is not None:
                    obs.emit(
                        upcoming.pool_arrival, obs_events.ARRIVE, device,
                        upcoming.request.request_id,
                    )
                upcoming = next(stream, None)
            max_steps = self.decode_stretch_length()
            if max_steps > 0:
                # Coalesced decode stretch: replay the naive stepper's exact
                # per-iteration arithmetic (durations, KV integral, spans)
                # without replanning, repricing or reallocating per step.
                running = batcher.running
                n = len(running)
                horizon = upcoming.pool_arrival if upcoming is not None else None
                contexts = [state.context_tokens for state in running]
                # Physical occupancy, shared prefix blocks counted once; each
                # decode step then adds exactly one private token per request,
                # replaying the naive stepper's utilization reads bit-exactly.
                stored = allocator.stored_tokens
                steps = 0
                stretch_start = now
                clock_start = prof.clock() if prof is not None else 0.0
                while steps < max_steps:
                    duration = self.decode_iteration_time(contexts)
                    now += duration
                    iterations += 1
                    stored += n
                    utilization = stored / capacity_tokens
                    kv_weighted += utilization * duration
                    kv_time += duration
                    kv_peak = max(kv_peak, utilization)
                    if timeline is not None:
                        timeline.add(
                            TimelineSpan(
                                device=device,
                                work=Pass(
                                    kind=PassKind.FORWARD,
                                    microbatch=iterations - 1,
                                    stage=0,
                                    device=device,
                                ),
                                start=now - duration,
                                end=now,
                            )
                        )
                    if iterations > max_iterations:
                        raise RuntimeError(
                            f"serving loop exceeded {max_iterations} iterations"
                        )
                    for index in range(n):
                        contexts[index] += 1
                    steps += 1
                    if horizon is not None and horizon <= now + 1e-12:
                        break
                # Bulk reservation commit: the last executed iteration
                # reserved context - 1 tokens per request (the token it
                # generated claims its slot next step).  Large batches commit
                # through the columnar plan (every new total and block delta
                # in one vectorized pass); small ones reserve per request —
                # the two are exactly equivalent (``bulk_reserve_decode``
                # replays ``reserve``'s bookkeeping in the same order).
                columns = self._stretch_columns
                if columns is None:
                    for state in running:
                        state.decoded += steps
                        allocator.reserve(
                            state.request.request_id, state.context_tokens - 1
                        )
                else:
                    new_totals, extra_blocks = columns.commit_plan(steps)
                    allocator.bulk_reserve_decode(
                        columns.request_ids, new_totals, extra_blocks
                    )
                    self._stretch_columns = None
                    for state in running:
                        state.decoded += steps
                if prof is not None:
                    prof.add("fast-forward", prof.clock() - clock_start)
                if obs is not None:
                    obs.emit(
                        now, obs_events.STRETCH, device, None,
                        (steps, n, stretch_start, stored / capacity_tokens),
                    )
                continue
            if not batcher.has_work:
                if upcoming is not None:
                    now = upcoming.pool_arrival
                    continue
                break
            if track_now:
                batcher.now = now
            clock_start = prof.clock() if prof is not None else 0.0
            plan = batcher.plan(self.prefill_budget())
            if prof is not None:
                prof.add("admission", prof.clock() - clock_start)
            if plan.empty:
                if batcher.running:
                    clock_start = prof.clock() if prof is not None else 0.0
                    victim = batcher._preempt_victim(plan)
                    if prof is not None:
                        prof.add("eviction", prof.clock() - clock_start)
                    if victim is not None:
                        continue  # freed blocks; replan
                # An idle pool with queued work is either waiting out a
                # token-bucket refill (jump to the earliest grant time) or a
                # future arrival — whichever unblocks first.
                jump = upcoming.pool_arrival if upcoming is not None else None
                ready = batcher.next_admission_time() if track_now else None
                if ready is not None and ready > now + 1e-12:
                    jump = ready if jump is None else min(jump, ready)
                if jump is not None:
                    now = jump
                    continue
                raise RuntimeError(
                    "serving pool stalled with queued work and no runnable batch"
                )
            clock_start = prof.clock() if prof is not None else 0.0
            duration = self.iteration_time(plan)
            if prof is not None:
                prof.add("pricing", prof.clock() - clock_start)
            now += duration
            iterations += 1
            utilization = allocator.token_utilization
            kv_weighted += utilization * duration
            kv_time += duration
            kv_peak = max(kv_peak, utilization)
            clock_start = prof.clock() if prof is not None else 0.0
            finished = batcher.commit(plan, now)
            if on_depart is None:
                departed.extend(finished)
            else:
                # Streaming consumer: fold the finished request in and drop
                # it — the pool retains no per-request state past departure.
                for state in finished:
                    on_depart(state)
            if prof is not None:
                prof.add("commit", prof.clock() - clock_start)
            if obs is not None:
                obs.emit(
                    now, obs_events.ITERATION, device, None,
                    (
                        duration,
                        plan.prefill_tokens,
                        len(plan.decode),
                        len(batcher.waiting),
                        len(batcher.running),
                        utilization,
                    ),
                )
            if timeline is not None:
                timeline.add(
                    TimelineSpan(
                        device=device,
                        work=Pass(
                            kind=PassKind.FORWARD,
                            microbatch=iterations - 1,
                            stage=0,
                            device=device,
                        ),
                        start=now - duration,
                        end=now,
                    )
                )
            if iterations > self.config.max_iterations:
                raise RuntimeError(
                    f"serving loop exceeded {self.config.max_iterations} iterations"
                )
        return _PoolRun(
            end_time=now,
            departed=departed,
            iterations=iterations,
            kv_mean=kv_weighted / kv_time if kv_time > 0 else 0.0,
            kv_peak=kv_peak,
            busy_time=kv_time,
        )


def _make_states(trace: Sequence[Request]) -> List[RequestState]:
    return [RequestState(record=RequestRecord(request)) for request in trace]


class ServingEngine:
    """Colocated continuous-batching deployment (prefill + decode, one pool)."""

    def __init__(
        self,
        model: ModelConfig,
        config: Optional[ServingConfig] = None,
        cost_model: Optional[CostModel] = None,
    ):
        self.model = model
        self.config = config or ServingConfig()
        self.pool = _Pool(model, self.config.num_gpus, self.config, cost_model)

    def run(self, trace: Iterable[Request], slo: Optional[SLO] = None) -> ServingResult:
        slo = slo or SLO()
        if not self.config.retain_records:
            return self._run_streaming(trace, slo)
        states = _make_states(list(trace) if not isinstance(trace, Sequence) else trace)
        timeline = Timeline(num_devices=1)
        outcome = self.pool.run(states, timeline=timeline, device=0)
        records = [state.record for state in states]
        arrivals = [r.request.arrival_time for r in records]
        duration = max(outcome.end_time - min(arrivals), 1e-12) if records else 0.0
        batcher = self.pool.batcher
        prefix = self.pool.allocator.prefix
        prefix_evictions = prefix.evicted_blocks if prefix is not None else 0
        required = batcher.prefix_hit_tokens + batcher.tokens_prefilled
        metrics = compute_metrics(
            records,
            duration,
            slo,
            kv_utilization_mean=outcome.kv_mean,
            kv_utilization_peak=outcome.kv_peak,
            preemptions=batcher.preemptions,
            prefix_hit_rate=batcher.prefix_hit_tokens / required if required else 0.0,
            prefix_hit_tokens=batcher.prefix_hit_tokens,
            prefix_flops_saved=batcher.prefix_flops_saved,
            prefix_evictions=prefix_evictions,
        )
        tenancy = self.config.tenancy
        tenant_metrics = compute_tenant_metrics(
            records,
            duration,
            slo,
            tenant_slos=tenancy.slo_map() if tenancy is not None else None,
        )
        return ServingResult(
            mode="colocated",
            metrics=metrics,
            records=records,
            timeline=timeline,
            iterations=outcome.iterations,
            kv_capacity_tokens=self.pool.kv_capacity_tokens,
            tokens_admitted=batcher.tokens_admitted,
            tokens_prefilled=batcher.tokens_prefilled,
            tokens_preempted_requeued=batcher.tokens_preempted_requeued,
            preemptions=batcher.preemptions,
            prefix_hit_tokens=batcher.prefix_hit_tokens,
            prefix_hit_requests=batcher.prefix_hit_requests,
            prefix_flops_saved=batcher.prefix_flops_saved,
            prefill_flops_executed=batcher.prefill_flops_executed,
            prefix_evictions=prefix_evictions,
            tenant_metrics=tenant_metrics,
        )

    def _run_streaming(self, trace: Iterable[Request], slo: SLO) -> ServingResult:
        """Bounded-memory run: lazy arrivals in, streaming accumulator out.

        The trace is pulled one request at a time (it may be a generator a
        million requests long), finished requests fold into a
        :class:`StreamingMetrics` accumulator and are dropped, and neither
        records nor timeline spans are retained — peak memory is set by the
        batch, the KV pool and the sketch, not by the trace length.
        """
        tenancy = self.config.tenancy
        streaming = StreamingMetrics(
            slo, tenant_slos=tenancy.slo_map() if tenancy is not None else None
        )
        # Mutable cells: the generator below runs inside the pool loop, and
        # the first arrival anchors the run's duration measurement.
        first_arrival = [0.0]
        seen = [False]

        def states() -> Iterator[RequestState]:
            last = float("-inf")
            for request in trace:
                arrival = request.arrival_time
                if arrival < last:
                    raise ValueError(
                        "streaming traces must be sorted by arrival_time "
                        f"(request {request.request_id!r} arrives at {arrival!r} "
                        f"after {last!r})"
                    )
                last = arrival
                if not seen[0]:
                    first_arrival[0] = arrival
                    seen[0] = True
                yield RequestState(record=RequestRecord(request))

        outcome = self.pool.run(
            states(),
            device=0,
            on_depart=lambda state: streaming.observe(state.record),
        )
        duration = max(outcome.end_time - first_arrival[0], 1e-12) if seen[0] else 0.0
        batcher = self.pool.batcher
        prefix = self.pool.allocator.prefix
        prefix_evictions = prefix.evicted_blocks if prefix is not None else 0
        required = batcher.prefix_hit_tokens + batcher.tokens_prefilled
        metrics = streaming.finalize(
            duration,
            kv_utilization_mean=outcome.kv_mean,
            kv_utilization_peak=outcome.kv_peak,
            preemptions=batcher.preemptions,
            prefix_hit_rate=batcher.prefix_hit_tokens / required if required else 0.0,
            prefix_hit_tokens=batcher.prefix_hit_tokens,
            prefix_flops_saved=batcher.prefix_flops_saved,
            prefix_evictions=prefix_evictions,
        )
        return ServingResult(
            mode="colocated",
            metrics=metrics,
            records=[],
            timeline=Timeline(num_devices=1),
            iterations=outcome.iterations,
            kv_capacity_tokens=self.pool.kv_capacity_tokens,
            tokens_admitted=batcher.tokens_admitted,
            tokens_prefilled=batcher.tokens_prefilled,
            tokens_preempted_requeued=batcher.tokens_preempted_requeued,
            preemptions=batcher.preemptions,
            prefix_hit_tokens=batcher.prefix_hit_tokens,
            prefix_hit_requests=batcher.prefix_hit_requests,
            prefix_flops_saved=batcher.prefix_flops_saved,
            prefill_flops_executed=batcher.prefill_flops_executed,
            prefix_evictions=prefix_evictions,
            retain_records=False,
            tenant_metrics=streaming.tenant_metrics(duration),
        )


class DisaggregatedEngine:
    """Prefill/decode disaggregation with comm-priced KV hand-off.

    The prefill pool drains the trace independently of the decode pool (its
    work never depends on decode state), so the simulation runs the pools in
    sequence: prefill completions, shifted by the per-request KV transfer
    time, become the decode pool's arrival trace.  TTFT is measured at the
    prefill pool — the prefill instance samples the first token — matching
    disaggregated serving practice.
    """

    def __init__(
        self,
        model: ModelConfig,
        config: Optional[ServingConfig] = None,
        prefill_fraction: float = 0.5,
        topology: Optional[ClusterTopology] = None,
        cost_model: Optional[CostModel] = None,
    ):
        self.model = model
        self.config = config or ServingConfig()
        if not self.config.retain_records:
            raise ValueError(
                "retain_records=False (streaming) requires the colocated "
                "engine: disaggregation replays the prefill pool's full "
                "departure list into the decode pool"
            )
        if not 0.0 < prefill_fraction < 1.0:
            raise ValueError("prefill_fraction must be in (0, 1)")
        total = self.config.num_gpus
        prefill_gpus = min(total - 1, max(1, round(total * prefill_fraction)))
        decode_gpus = total - prefill_gpus
        if total < 2:
            raise ValueError("disaggregation needs at least 2 GPUs")
        self.prefill_gpus = prefill_gpus
        self.decode_gpus = decode_gpus
        self.topology = topology or ClusterTopology(
            num_nodes=max(1, -(-total // 8)), gpus_per_node=min(8, total)
        )
        # The prefill pool runs no decodes, so the TPOT cap does not apply.
        self.prefill_pool = _Pool(
            model,
            prefill_gpus,
            replace(self.config, tpot_cap=None),
            cost_model,
            prefill_only=True,
        )
        # No prefill runs on the decode pool either, so its cap is moot too.
        self.decode_pool = _Pool(
            model,
            decode_gpus,
            replace(self.config, tpot_cap=None),
            cost_model,
            decode_only=True,
        )

    def _transfer_time(self, prompt_tokens: int) -> float:
        kv_bytes = (
            kv_cache_bytes_per_token_per_layer(self.model, tensor_parallel_size=1)
            * self.model.num_layers
            * prompt_tokens
        )
        intra = self.topology.fits_in_node(self.prefill_gpus + self.decode_gpus)
        return CommModel(self.topology).p2p_time(kv_bytes, intra_node=intra)

    def run(self, trace: Sequence[Request], slo: Optional[SLO] = None) -> ServingResult:
        slo = slo or SLO()
        states = _make_states(trace)
        timeline = Timeline(num_devices=2)
        prefill_run = self.prefill_pool.run(states, timeline=timeline, device=0)

        handoffs: List[RequestState] = []
        for state in prefill_run.departed:
            if state.phase is not Phase.HANDOFF:
                continue  # finished at prefill (single-output-token request)
            handoffs.append(
                RequestState(
                    record=state.record,
                    prefilled=state.request.prompt_tokens,
                    decoded=state.decoded,
                    pool_arrival=state.record.first_token_time
                    + self._transfer_time(state.request.prompt_tokens),
                )
            )
        decode_run = self.decode_pool.run(handoffs, timeline=timeline, device=1)

        records = [state.record for state in states]
        arrivals = [r.request.arrival_time for r in records]
        end_time = max(prefill_run.end_time, decode_run.end_time)
        duration = max(end_time - min(arrivals), 1e-12) if records else 0.0
        # Combine pool KV statistics weighted by each pool's busy time (the
        # decode pool idles until the first hand-off arrives, so wall-clock
        # end times would over-weight it).
        spans = [
            (prefill_run.kv_mean, prefill_run.busy_time),
            (decode_run.kv_mean, decode_run.busy_time),
        ]
        weight = sum(w for _, w in spans)
        kv_mean = sum(v * w for v, w in spans) / weight if weight > 0 else 0.0
        preemptions = self.prefill_pool.batcher.preemptions + self.decode_pool.batcher.preemptions
        pf, dc = self.prefill_pool.batcher, self.decode_pool.batcher
        prefix = self.prefill_pool.allocator.prefix
        prefix_evictions = prefix.evicted_blocks if prefix is not None else 0
        hit_tokens = pf.prefix_hit_tokens + dc.prefix_hit_tokens
        prefilled = pf.tokens_prefilled + dc.tokens_prefilled
        required = hit_tokens + prefilled
        metrics = compute_metrics(
            records,
            duration,
            slo,
            kv_utilization_mean=kv_mean,
            kv_utilization_peak=max(prefill_run.kv_peak, decode_run.kv_peak),
            preemptions=preemptions,
            prefix_hit_rate=hit_tokens / required if required else 0.0,
            prefix_hit_tokens=hit_tokens,
            prefix_flops_saved=pf.prefix_flops_saved + dc.prefix_flops_saved,
            prefix_evictions=prefix_evictions,
        )
        tenancy = self.config.tenancy
        tenant_metrics = compute_tenant_metrics(
            records,
            duration,
            slo,
            tenant_slos=tenancy.slo_map() if tenancy is not None else None,
        )
        return ServingResult(
            mode="disaggregated",
            metrics=metrics,
            records=records,
            timeline=timeline,
            iterations=prefill_run.iterations + decode_run.iterations,
            kv_capacity_tokens=self.prefill_pool.kv_capacity_tokens
            + self.decode_pool.kv_capacity_tokens,
            tokens_admitted=pf.tokens_admitted + dc.tokens_admitted,
            tokens_prefilled=prefilled,
            tokens_preempted_requeued=pf.tokens_preempted_requeued
            + dc.tokens_preempted_requeued,
            preemptions=preemptions,
            prefix_hit_tokens=hit_tokens,
            prefix_hit_requests=pf.prefix_hit_requests + dc.prefix_hit_requests,
            prefix_flops_saved=pf.prefix_flops_saved + dc.prefix_flops_saved,
            prefill_flops_executed=pf.prefill_flops_executed + dc.prefill_flops_executed,
            prefix_evictions=prefix_evictions,
            tenant_metrics=tenant_metrics,
        )
