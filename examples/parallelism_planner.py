#!/usr/bin/env python3
"""Parallelism planner CLI: pick the best configuration for a training job.

Give it a model, a GPU budget and a context length and it grid-searches the
hybrid-parallelism space of each training system (SlimPipe, Megatron-LM-like,
DeepSpeed-like) and prints the winner — the same procedure that generates the
paper's Figure 12 cells, exposed as a small planning tool.

Examples::

    python examples/parallelism_planner.py
    python examples/parallelism_planner.py --model llama-70b --gpus 256 --context-k 512
    python examples/parallelism_planner.py --model mixtral-8x7b --gpus 128 \
        --context-k 1024 --tokens-per-iteration-m 16 --allow-offload
"""

import argparse

from repro.analysis.report import render_table
from repro.constants import tokens_from_k
from repro.hardware.topology import hopper_cluster
from repro.model.config import MODEL_REGISTRY, get_model_config
from repro.parallel.config import WorkloadConfig
from repro.systems import DeepSpeedSystem, MegatronSystem, SlimPipeSystem


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--model",
        default="llama-13b",
        choices=sorted(MODEL_REGISTRY),
        help="model preset (Table 3 of the paper)",
    )
    parser.add_argument("--gpus", type=int, default=64, help="total Hopper GPUs")
    parser.add_argument(
        "--context-k", type=int, default=256, help="context length in K tokens (e.g. 256 = 256K)"
    )
    parser.add_argument(
        "--tokens-per-iteration-m",
        type=float,
        default=4.0,
        help="global token budget per iteration, in millions (paper uses 4M / 16M)",
    )
    parser.add_argument(
        "--allow-offload",
        action="store_true",
        help="let SlimPipe use PP-aware activation offloading (Table 4 regime)",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    model = get_model_config(args.model)
    cluster = hopper_cluster(args.gpus)
    sequence_length = tokens_from_k(args.context_k)
    tokens_per_iteration = int(args.tokens_per_iteration_m * 1024 * 1024)
    workload = WorkloadConfig(
        sequence_length=sequence_length,
        tokens_per_iteration=max(tokens_per_iteration, sequence_length),
    )

    print(
        f"planning: {model.name} ({model.total_params() / 1e9:.1f}B), "
        f"{args.gpus} GPUs, {args.context_k}K context, "
        f"{workload.global_batch_sequences} sequences/iteration\n"
    )

    systems = [
        SlimPipeSystem(allow_offload=args.allow_offload),
        MegatronSystem(),
        DeepSpeedSystem(),
    ]
    rows = []
    for system in systems:
        estimate = system.best_configuration(model, cluster, workload)
        if estimate.feasible:
            p = estimate.parallel
            rows.append(
                (
                    system.name,
                    f"{estimate.mfu * 100:.1f}%",
                    f"{estimate.iteration_time:.1f} s",
                    f"{estimate.peak_memory_gib:.0f} GiB",
                    estimate.recompute.value,
                    f"t={p.t} c={p.c} d={p.d} e={p.e} p={p.p} v={p.v}"
                    + (f" n={p.num_slices}" if p.num_slices else ""),
                )
            )
        else:
            reason = "out of memory" if estimate.reason == "oom" else "no viable configuration"
            rows.append((system.name, reason, "-", "-", "-", "-"))

    print(
        render_table(
            ["system", "MFU", "iteration", "peak memory", "recompute", "configuration"],
            rows,
            title="best configuration per training system",
        )
    )

    best = max(
        (system.best_configuration(model, cluster, workload) for system in systems),
        key=lambda est: est.mfu if est.feasible else -1.0,
    )
    if best.feasible:
        print(f"recommendation: {best.describe()}")
    else:
        print(
            "No system fits this workload on the given cluster; add GPUs, shorten the "
            "context, or enable --allow-offload."
        )


if __name__ == "__main__":
    main()
