"""Capacity-plan a fleet: how many replicas to meet an SLO at a given load.

Walks the operator workflow the fleet layer exists for, on the
``bursty-long`` scenario (herds of 32K-token prompts over background chat):

1. simulate the scenario once at its default fleet size and show the
   latency/goodput/GPU-hour tables;
2. compare routing policies — round-robin versus least-outstanding-tokens —
   on the identical trace and fleet;
3. run the capacity planner for a 2-second TTFT p99 SLO at 1x and 2x load
   and print both frontiers: higher load never plans fewer replicas.

Run with::

    PYTHONPATH=src python examples/fleet_capacity_plan.py
"""

from repro.fleet import get_fleet_scenario, plan_capacity, run_fleet_scenario


def main() -> None:
    scenario = get_fleet_scenario("bursty-long")
    print(f"scenario: {scenario.name} — {scenario.description}")
    print(
        f"model {scenario.model}, {scenario.gpus_per_replica} GPUs/replica, "
        f"SLO: TTFT<={scenario.slo.ttft:g}s TPOT<={scenario.slo.tpot * 1e3:g}ms\n"
    )

    result = run_fleet_scenario(scenario, seed=0)
    print(result.to_text(title=f"{scenario.name} | defaults"))
    print()

    print("routing policies on the same fixed fleet (4 replicas):")
    for router in ("round-robin", "least-tokens"):
        fixed = run_fleet_scenario(
            scenario, router=router, replicas=4, autoscale=False, seed=0
        )
        print(
            f"  {router:13s} TTFT p99 {fixed.metrics.ttft_p99:6.2f} s   "
            f"goodput {fixed.metrics.goodput_fraction * 100.0:5.1f}%   "
            f"GPU-hours {fixed.fleet.gpu_hours:.2f}"
        )
    print()

    for load in (1.0, 2.0):
        plan = plan_capacity(scenario, slo_ttft_p99=2.0, load_scale=load)
        print(plan.to_text())


if __name__ == "__main__":
    main()
