#!/usr/bin/env python3
"""Quickstart: plan and simulate one SlimPipe training iteration.

This walks through the library's main entry points on a single concrete
scenario — Llama 13B with a 256K-token context on 32 Hopper GPUs
(8-way tensor parallelism x 4-way pipeline parallelism):

1. describe the model, cluster, parallelism and workload;
2. build the SlimPipe slice-level 1F1B schedule and look at its structure;
3. simulate one iteration (timing, bubbles, per-device memory, MFU);
4. compare against the classic 1F1B schedule on the same problem.

Run with::

    python examples/quickstart.py
"""

from repro.analysis.report import format_bytes, format_percent, render_table
from repro.core.planner import SlimPipeOptions, SlimPipePlanner
from repro.hardware.topology import hopper_cluster
from repro.model.config import get_model_config
from repro.parallel.config import ParallelConfig, WorkloadConfig
from repro.schedules import build_1f1b_schedule
from repro.sim.engine import SimulationEngine
from repro.sim.memory_tracker import MemoryTracker
from repro.sim.providers import (
    ModelActivationAccountant,
    ModelCostProvider,
    spec_for_schedule,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The training point.
    # ------------------------------------------------------------------
    model = get_model_config("llama-13b")
    cluster = hopper_cluster(32)  # 4 nodes x 8 Hopper 80 GB GPUs
    parallel = ParallelConfig(
        tensor_parallel_size=8,
        pipeline_parallel_size=4,
        num_slices=16,  # n: slices per sequence (a multiple of p)
    )
    workload = WorkloadConfig(
        sequence_length=256 * 1024,       # 256K-token context
        tokens_per_iteration=1024 * 1024,  # 4 sequences per iteration
    )
    print(f"model:     {model.name} ({model.total_params() / 1e9:.1f}B parameters)")
    print(f"cluster:   {cluster.total_gpus} x {cluster.gpu.name}")
    print(
        f"parallel:  t={parallel.t} p={parallel.p} n={parallel.n} "
        f"(microbatches per iteration: {workload.num_microbatches(parallel)})"
    )

    # ------------------------------------------------------------------
    # 2. The SlimPipe schedule.
    # ------------------------------------------------------------------
    planner = SlimPipePlanner(model, cluster, parallel, workload, SlimPipeOptions())
    schedule = planner.build_schedule()
    print(f"\nschedule:  {schedule.name} with {schedule.total_passes()} passes")
    print(f"warm-up forwards per device: {schedule.warmup_forward_counts()}")
    print(f"peak in-flight slice activations per device: {schedule.max_inflight_activations()}")

    # ------------------------------------------------------------------
    # 3. Simulate one iteration.
    # ------------------------------------------------------------------
    execution = planner.run()
    metrics = execution.metrics
    print("\nsimulated iteration:")
    print(f"  iteration time : {metrics.iteration_time:.2f} s")
    print(f"  MFU            : {format_percent(metrics.mfu)}")
    print(f"  bubble fraction: {format_percent(metrics.bubble_fraction)}")
    print(f"  tokens / second: {metrics.tokens_per_second:,.0f}")
    print(
        render_table(
            ["device", "model states", "peak activations", "peak total"],
            [
                (
                    profile.device,
                    format_bytes(profile.base_bytes),
                    format_bytes(profile.peak_activation_bytes),
                    format_bytes(profile.peak_bytes),
                )
                for profile in execution.memory_profiles
            ],
            title="per-device memory",
        )
    )

    # ------------------------------------------------------------------
    # 4. Compare with the classic (default) 1F1B schedule.
    # ------------------------------------------------------------------
    baseline = build_1f1b_schedule(parallel.p, workload.num_microbatches(parallel))
    spec = spec_for_schedule(baseline, model, ParallelConfig(
        tensor_parallel_size=8, pipeline_parallel_size=4
    ), workload.sequence_length)
    timeline = SimulationEngine(baseline, ModelCostProvider(spec, cluster)).run()
    peaks = MemoryTracker(
        baseline, ModelActivationAccountant(spec, cluster, include_model_states=False)
    ).peak_activation_bytes()

    slim_peak = max(p.peak_activation_bytes for p in execution.memory_profiles)
    print("classic 1F1B on the same problem:")
    print(f"  iteration time : {timeline.makespan:.2f} s  (SlimPipe: {metrics.iteration_time:.2f} s)")
    print(f"  bubble fraction: {format_percent(timeline.bubble_fraction())} "
          f"(SlimPipe: {format_percent(metrics.bubble_fraction)})")
    print(f"  peak activation: {format_bytes(max(peaks))}  (SlimPipe: {format_bytes(slim_peak)})")
    print(
        f"\nSlimPipe stores {max(peaks) / slim_peak:.1f}x less activation memory "
        f"and wastes {timeline.bubble_fraction() / max(metrics.bubble_fraction, 1e-9):.1f}x "
        "less device time in pipeline bubbles."
    )


if __name__ == "__main__":
    main()
