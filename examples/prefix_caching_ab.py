"""Shared-prefix KV caching A/B, as a library walkthrough.

Runs the ``shared-system-prompt`` scenario (every request behind one 8K
system prompt) with prefix caching on and off on the identical trace, then
shows the fleet-level composition: the arrival-rate autoscaler crediting
the cache's effective-capacity gain with fewer replicas.

Run with::

    PYTHONPATH=src python examples/prefix_caching_ab.py
"""

from repro.fleet import get_fleet_scenario, run_fleet_scenario
from repro.serving import get_scenario, run_scenario


def main() -> None:
    scenario = get_scenario("shared-system-prompt")
    cached = run_scenario(scenario, "colocated", seed=0)
    uncached = run_scenario(scenario, "colocated", seed=0, prefix_caching=False)

    print(cached.metrics.to_text(title="shared-system-prompt | prefix caching ON"))
    print(uncached.metrics.to_text(title="shared-system-prompt | prefix caching OFF"))
    print(
        f"TTFT p50        : {uncached.metrics.ttft_p50:.3f} s -> "
        f"{cached.metrics.ttft_p50:.3f} s "
        f"({uncached.metrics.ttft_p50 / cached.metrics.ttft_p50:.1f}x)"
    )
    print(
        f"prefill PFLOPs  : {uncached.prefill_flops_executed / 1e15:.2f} -> "
        f"{cached.prefill_flops_executed / 1e15:.2f} "
        f"({uncached.prefill_flops_executed / cached.prefill_flops_executed:.1f}x)"
    )
    print(f"hit rate        : {cached.prefix_hit_rate:.1%} "
          f"({cached.prefix_hit_requests} requests hit, "
          f"{cached.prefix_evictions} evictions)")

    fleet = get_fleet_scenario("shared-system-prompt")
    fleet_on = run_fleet_scenario(fleet, seed=0)
    fleet_off = run_fleet_scenario(fleet, seed=0, prefix_caching=False)
    print()
    print("fleet composition (arrival-rate autoscaler, prefix-hit capacity signal):")
    print(
        f"  GPU-hours     : {fleet_off.fleet.gpu_hours:.2f} -> "
        f"{fleet_on.fleet.gpu_hours:.2f}"
    )
    print(
        f"  peak replicas : {fleet_off.fleet.replicas_peak} -> "
        f"{fleet_on.fleet.replicas_peak}"
    )
    print(
        f"  goodput       : {fleet_off.metrics.goodput_fraction:.1%} -> "
        f"{fleet_on.metrics.goodput_fraction:.1%}"
    )


if __name__ == "__main__":
    main()
