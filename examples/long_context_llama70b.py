#!/usr/bin/env python3
"""Long-context training study: Llama 70B on 128 GPUs, 64K to 2048K tokens.

The scenario the paper's introduction motivates: you have a 128-GPU Hopper
cluster and want to extend a 70B model's context window as far as possible
while keeping the cluster busy.  The script

1. grid-searches the best configuration of DeepSpeed (ZeRO + Ulysses),
   Megatron-LM (interleaved 1F1B) and SlimPipe at each context length
   (4M tokens per iteration, as in Section 6.4), and
2. pushes on to the ultra-long regime (Section 6.5) by enabling SlimPipe's
   activation offloading, reporting the offload ratio the planner needs.

Run with::

    python examples/long_context_llama70b.py
"""

from repro.analysis.report import render_table
from repro.constants import tokens_from_k
from repro.hardware.topology import hopper_cluster
from repro.model.config import LLAMA_70B
from repro.model.memory import RecomputeMode
from repro.parallel.config import WorkloadConfig
from repro.systems import DeepSpeedSystem, MegatronSystem, SlimPipeSystem


def best_rows(context_ks, cluster, tokens_per_iteration):
    systems = (DeepSpeedSystem(), MegatronSystem(), SlimPipeSystem())
    rows = []
    for seq_k in context_ks:
        seq = tokens_from_k(seq_k)
        workload = WorkloadConfig(
            sequence_length=seq, tokens_per_iteration=max(tokens_per_iteration, seq)
        )
        for system in systems:
            estimate = system.best_configuration(LLAMA_70B, cluster, workload)
            if estimate.feasible:
                p = estimate.parallel
                config = f"t={p.t} c={p.c} d={p.d} p={p.p}" + (
                    f" n={p.num_slices}" if p.num_slices else ""
                )
                rows.append(
                    (
                        f"{seq_k}K",
                        system.name,
                        f"{estimate.mfu * 100:.1f}%",
                        f"{estimate.peak_memory_gib:.0f} GiB",
                        estimate.recompute.value,
                        config,
                    )
                )
            else:
                rows.append((f"{seq_k}K", system.name, estimate.reason, "-", "-", "-"))
    return rows


def main() -> None:
    cluster = hopper_cluster(128)
    print(f"cluster: {cluster.total_gpus} x {cluster.gpu.name} "
          f"({cluster.num_nodes} nodes)\n")

    # ------------------------------------------------------------------
    # 1. The Figure 12 regime: 64K - 512K, 4M tokens per iteration.
    # ------------------------------------------------------------------
    rows = best_rows((64, 128, 256, 512), cluster, 4 * 1024 * 1024)
    print(
        render_table(
            ["context", "system", "MFU", "peak memory", "recompute", "best configuration"],
            rows,
            title="Llama 70B on 128 GPUs — best configuration per system",
        )
    )

    # ------------------------------------------------------------------
    # 2. The ultra-long regime: SlimPipe + activation offloading (Table 4).
    # ------------------------------------------------------------------
    print("pushing further with SlimPipe's PP-aware activation offloading:")
    offload_rows = []
    for seq_k in (1024, 2048):
        seq = tokens_from_k(seq_k)
        workload = WorkloadConfig(
            sequence_length=seq, tokens_per_iteration=max(16 * 1024 * 1024, seq)
        )
        system = SlimPipeSystem(allow_offload=True)
        system.recompute_ladder = (RecomputeMode.SELECTIVE,)
        estimate = system.best_configuration(LLAMA_70B, cluster, workload)
        if estimate.feasible:
            offload_rows.append(
                (
                    f"{seq_k}K",
                    f"{estimate.mfu * 100:.1f}%",
                    f"{estimate.details.get('offload_ratio', 0.0) * 100:.0f}%",
                    f"{estimate.peak_memory_gib:.0f} GiB",
                )
            )
        else:
            offload_rows.append((f"{seq_k}K", estimate.reason, "-", "-"))
    print(
        render_table(
            ["context", "MFU", "offload ratio", "peak memory"],
            offload_rows,
            title="SlimPipe + offloading (selective checkpointing, 16M tokens/iteration)",
        )
    )

    print(
        "Takeaway: the baselines stop (OOM / no viable configuration) before 512K,\n"
        "while SlimPipe keeps the cluster above ~40% MFU and, with offloading,\n"
        "extends the context into the multi-million-token regime — the behaviour\n"
        "reported in Figure 12 and Table 4 of the paper."
    )


if __name__ == "__main__":
    main()
