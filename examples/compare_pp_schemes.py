#!/usr/bin/env python3
"""Compare pipeline-parallelism schemes on one model (Figures 2, 3, 13, 14).

A systems-design scenario: you maintain a training stack for Llama-13B-class
models and need to decide which pipeline schedule to adopt for long-context
fine-tuning on a single 64-GPU pod (8-way TP x 8-way PP).  The script compares
GPipe-descendant schemes (default and interleaved 1F1B), the zero-bubble
V-schedules, and SlimPipe on three axes:

* the maximum context length each schedule can even fit (Figure 2),
* the theoretical pipeline bubble at a long-context operating point (Figure 3),
* efficiency and memory across context lengths (Figures 13 / 14).

Run with::

    python examples/compare_pp_schemes.py
"""

from repro.analysis.figures import (
    figure2_max_context,
    figure3_bubble_fractions,
    scheme_context_sweep,
)
from repro.analysis.report import render_table


def main() -> None:
    # ------------------------------------------------------------------
    # 1. How far can each schedule stretch the context window?
    # ------------------------------------------------------------------
    max_context = figure2_max_context(max_context_k=768, step_k=8)
    print(max_context.to_text())

    # ------------------------------------------------------------------
    # 2. How much device time does each schedule waste at 256K?
    # ------------------------------------------------------------------
    bubbles = figure3_bubble_fractions()
    print(bubbles.to_text())

    # ------------------------------------------------------------------
    # 3. Efficiency and memory across context lengths (full checkpointing).
    # ------------------------------------------------------------------
    sweep = scheme_context_sweep(sequence_ks=(32, 64, 128, 256, 512))
    print(sweep.to_text())

    # ------------------------------------------------------------------
    # 4. A decision summary.
    # ------------------------------------------------------------------
    summary = []
    for scheme in ("zb-v", "v-half", "1f1b", "interleaved-1f1b", "slimpipe"):
        reachable = [
            row.sequence_k
            for row in sweep.rows
            if row.scheme == scheme and row.feasible
        ]
        best_mfu = max(
            (row.mfu for row in sweep.rows if row.scheme == scheme and row.feasible),
            default=0.0,
        )
        summary.append(
            (
                scheme,
                f"{max_context.max_context(scheme)}K",
                f"{max(reachable)}K" if reachable else "-",
                f"{best_mfu * 100:.1f}%",
                f"{bubbles.fraction(scheme) * 100:.1f}%",
            )
        )
    print(
        render_table(
            ["scheme", "max context (no recompute)", "max context (full ckpt)", "best MFU", "bubble @256K"],
            summary,
            title="Decision summary — Llama 13B, 8-way TP, 8-way PP",
        )
    )
    print(
        "SlimPipe is the only schedule that combines the longest reachable context\n"
        "with the highest efficiency and the smallest bubble — the trade the paper\n"
        "summarises in Table 2 and demonstrates in Figures 13/14."
    )


if __name__ == "__main__":
    main()
