#!/usr/bin/env python3
"""Numeric proof-of-correctness: sliced multi-device SlimPipe == reference.

The schedule-level results (memory, bubbles, MFU) only matter if the sliced,
exchanged, vocabulary-parallel execution still computes the *same model* as a
plain single-device forward/backward.  This example demonstrates exactly that
with the NumPy numeric engine:

1. build a small Llama-style model and a reference (unsliced, single-device)
   trainer;
2. run the same weights through the SlimPipe numeric runner — 4 simulated
   pipeline devices, 8 sequence slices, attention context exchange and
   vocabulary parallelism all enabled — and compare loss and every gradient;
3. train both for a few steps and show the loss curves stay identical;
4. print the runner's telemetry: chunked-KV-cache behaviour and exchanged
   bytes.

Run with::

    python examples/numeric_equivalence.py
"""

import numpy as np

from repro.numerics.model import ModelParams, NumericModelConfig, ReferenceModel
from repro.numerics.pipeline_runner import SlimPipeNumericRunner, SlimPipeRunnerOptions


def apply_sgd(params: ModelParams, grads, lr: float) -> None:
    """One in-place SGD step over every parameter."""
    params.embedding -= lr * grads.embedding
    params.final_norm -= lr * grads.final_norm
    params.output_weight -= lr * grads.output_weight
    for layer, layer_grads in zip(params.layers, grads.layers):
        for name, grad in layer_grads.as_dict().items():
            getattr(layer, name).__isub__(lr * grad)


def main() -> None:
    config = NumericModelConfig(
        num_layers=4, hidden_size=32, num_heads=4, num_groups=2, ffn_size=64, vocab_size=128
    )
    rng = np.random.default_rng(0)
    sequence_length = 64
    tokens = rng.integers(0, config.vocab_size, size=sequence_length)
    targets = np.roll(tokens, -1)  # next-token prediction

    # Two independent copies of the same initial weights.
    reference_params = ModelParams.init(config, seed=7)
    slimpipe_params = ModelParams.init(config, seed=7)

    reference = ReferenceModel(reference_params)
    runner = SlimPipeNumericRunner(
        slimpipe_params,
        num_devices=4,
        num_slices=8,
        options=SlimPipeRunnerOptions(context_exchange=True, vocab_parallel=True),
    )

    # ------------------------------------------------------------------
    # 1. Single-step equivalence.
    # ------------------------------------------------------------------
    ref_loss, ref_grads = reference.loss_and_gradients(tokens, targets)
    slim_loss, slim_grads = runner.loss_and_gradients(tokens, targets)
    max_diff = max(
        float(np.max(np.abs(a - b)))
        for a, b in zip(ref_grads.flatten().values(), slim_grads.flatten().values())
    )
    print("single step:")
    print(f"  reference loss : {ref_loss:.6f}")
    print(f"  SlimPipe loss  : {slim_loss:.6f}   (|diff| = {abs(ref_loss - slim_loss):.2e})")
    print(f"  max gradient difference over all parameters: {max_diff:.2e}")

    # ------------------------------------------------------------------
    # 2. A few training steps with each execution path.
    # ------------------------------------------------------------------
    print("\ntraining 5 steps with lr=0.5 on both paths:")
    print(f"{'step':>4} {'reference loss':>16} {'SlimPipe loss':>15}")
    for step in range(5):
        ref_loss, ref_grads = reference.loss_and_gradients(tokens, targets)
        slim_loss, slim_grads = runner.loss_and_gradients(tokens, targets)
        print(f"{step:>4} {ref_loss:>16.6f} {slim_loss:>15.6f}")
        apply_sgd(reference_params, ref_grads, lr=0.5)
        apply_sgd(slimpipe_params, slim_grads, lr=0.5)

    # ------------------------------------------------------------------
    # 3. Telemetry of the last SlimPipe run.
    # ------------------------------------------------------------------
    telemetry = runner.telemetry
    print("\nSlimPipe runner telemetry (last run):")
    print(f"  slice lengths            : {telemetry.slice_lengths}")
    print(f"  peak live KV chunks/devce: {telemetry.peak_live_kv_chunks}")
    print(f"  KV chunk reuse fraction  : {[f'{f:.2f}' for f in telemetry.kv_chunk_reuse_fraction]}")
    print(f"  context-exchange traffic : {telemetry.exchanged_bytes / 1024:.1f} KiB")
    print(
        "\nThe losses and gradients of the sliced, multi-device, context-exchanged,\n"
        "vocabulary-parallel execution match the single-device reference to floating-\n"
        "point precision — the correctness property SlimPipe's schedule relies on."
    )


if __name__ == "__main__":
    main()
