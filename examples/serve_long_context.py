"""Serve long-context traffic: colocated vs prefill/decode disaggregation.

Simulates the ``bursty-long`` scenario — thundering herds of 16K-token
prompts over steady chat decode traffic — under both deployments of the
serving simulator and prints the metric tables side by side.  The colocated
engine must throttle chunked prefill to protect the TPOT of running decodes,
which is exactly what inflates its tail TTFT during bursts; the
disaggregated prefill pool has no decodes to protect and keeps its tail
TTFT flat, at the price of a slower (smaller) decode pool.

Run with::

    PYTHONPATH=src python examples/serve_long_context.py
"""

from repro.serving import get_scenario, run_scenario


def main() -> None:
    scenario = get_scenario("bursty-long")
    print(f"scenario: {scenario.name} — {scenario.description}")
    print(f"model {scenario.model}, {scenario.num_gpus} GPUs, "
          f"SLO: TTFT<={scenario.slo.ttft:g}s TPOT<={scenario.slo.tpot * 1e3:g}ms\n")
    results = {}
    for mode in ("colocated", "disaggregated"):
        result = run_scenario(scenario, mode, seed=0)
        results[mode] = result
        print(result.metrics.to_text(title=f"{scenario.name} | {mode}"))
    ratio = (
        results["colocated"].metrics.ttft_p99
        / results["disaggregated"].metrics.ttft_p99
    )
    print(f"disaggregation lowers p99 TTFT by {ratio:.1f}x on this workload")


if __name__ == "__main__":
    main()
