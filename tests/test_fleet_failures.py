"""Tests for fleet failure injection (repro.fleet.failures + failover)."""

import pytest

from repro.fleet.cluster import FleetConfig, FleetEngine
from repro.fleet.failures import FailureEvent, FailurePlan, random_failure_plan
from repro.fleet.scenarios import get_fleet_scenario, run_fleet_scenario
from repro.model.config import get_model_config
from repro.serving.workload import poisson_trace

MODEL = get_model_config("llama-13b")


def _config(**overrides):
    defaults = dict(gpus_per_replica=1, initial_replicas=3, max_replicas=4, sessions=4)
    defaults.update(overrides)
    return FleetConfig(**defaults)


def _trace(num=20, seed=0):
    return poisson_trace(
        num_requests=num,
        arrival_rate=6.0,
        prompt_mean=1024,
        output_mean=48,
        seed=seed,
    )


class TestFailureEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            FailureEvent(time=-1.0, kind="crash", replica_index=0, duration=1.0)
        with pytest.raises(ValueError):
            FailureEvent(time=0.0, kind="meteor", replica_index=0, duration=1.0)
        with pytest.raises(ValueError):
            FailureEvent(time=0.0, kind="crash", replica_index=0, duration=0.0)
        with pytest.raises(ValueError):
            # A slow window must actually slow the victim down.
            FailureEvent(time=0.0, kind="slow", replica_index=0, duration=1.0, slowdown=1.0)

    def test_plan_orders_events(self):
        plan = FailurePlan(
            events=(
                FailureEvent(time=5.0, kind="crash", replica_index=0, duration=1.0),
                FailureEvent(time=1.0, kind="crash", replica_index=1, duration=1.0),
            )
        )
        assert [e.time for e in plan.events] == [1.0, 5.0]
        assert plan.crashes == 2
        assert plan.slow_events == 0


class TestRandomPlan:
    def test_deterministic_per_seed(self):
        a = random_failure_plan(seed=7, horizon=100.0, crash_rate=0.05, slow_rate=0.05)
        b = random_failure_plan(seed=7, horizon=100.0, crash_rate=0.05, slow_rate=0.05)
        c = random_failure_plan(seed=8, horizon=100.0, crash_rate=0.05, slow_rate=0.05)
        assert a == b
        assert a != c

    def test_horizon_and_kinds(self):
        plan = random_failure_plan(seed=0, horizon=50.0, crash_rate=0.1, slow_rate=0.1)
        assert all(0.0 <= e.time < 50.0 for e in plan.events)
        assert plan.crashes + plan.slow_events == len(plan)

    def test_zero_rates_mean_no_events(self):
        assert len(random_failure_plan(seed=0, horizon=100.0)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            random_failure_plan(seed=0, horizon=0.0)
        with pytest.raises(ValueError):
            random_failure_plan(seed=0, horizon=1.0, crash_rate=-0.1)


class TestCrashFailover:
    def test_crash_reroutes_inflight_work(self):
        # Crash the (single-digit-id) replicas early while the trace is hot:
        # work must move and still complete.
        plan = FailurePlan(
            events=(
                FailureEvent(time=0.5, kind="crash", replica_index=0, duration=5.0),
                FailureEvent(time=1.0, kind="crash", replica_index=0, duration=5.0),
            )
        )
        result = FleetEngine(MODEL, _config(), failure_plan=plan).run(_trace())
        assert result.fleet.crashes == 2
        assert result.fleet.rerouted_requests > 0
        assert result.metrics.num_requests == 20
        assert all(record.finished for record in result.records)
        assert result.token_accounting_balanced

    def test_crashed_replica_recovers_and_serves_again(self):
        plan = FailurePlan(
            events=(FailureEvent(time=0.5, kind="crash", replica_index=0, duration=0.5),),
        )
        # One replica only: after the crash everything is held until recovery.
        config = _config(initial_replicas=1, max_replicas=1)
        result = FleetEngine(MODEL, config, failure_plan=plan).run(_trace(num=10))
        assert result.fleet.crashes == 1
        assert all(record.finished for record in result.records)
        assert result.token_accounting_balanced

    def test_failover_hurts_the_tail_but_loses_nothing(self):
        clean = FleetEngine(MODEL, _config()).run(_trace())
        plan = FailurePlan(
            events=(FailureEvent(time=0.5, kind="crash", replica_index=0, duration=10.0),),
        )
        crashed = FleetEngine(MODEL, _config(), failure_plan=plan).run(_trace())
        assert crashed.metrics.num_requests == clean.metrics.num_requests
        # Lost KV means re-prefill on the survivor: the tail must pay.
        assert crashed.metrics.e2e_p99 >= clean.metrics.e2e_p99


class TestSlowNode:
    def test_slow_window_stretches_the_makespan(self):
        plan = FailurePlan(
            events=(
                FailureEvent(
                    time=0.2, kind="slow", replica_index=0, duration=30.0, slowdown=4.0
                ),
            )
        )
        clean = FleetEngine(MODEL, _config()).run(_trace())
        degraded = FleetEngine(MODEL, _config(), failure_plan=plan).run(_trace())
        assert degraded.fleet.slow_events == 1
        assert degraded.fleet.crashes == 0
        assert degraded.metrics.duration > clean.metrics.duration
        assert degraded.token_accounting_balanced

    def test_overlapping_slow_windows_extend_the_degradation(self):
        single = FailurePlan(
            events=(
                FailureEvent(
                    time=0.2, kind="slow", replica_index=0, duration=1.0, slowdown=4.0
                ),
            )
        )
        overlapping = FailurePlan(
            events=single.events
            + (
                FailureEvent(
                    time=0.5, kind="slow", replica_index=0, duration=6.0, slowdown=4.0
                ),
            )
        )
        short = FleetEngine(MODEL, _config(), failure_plan=single).run(_trace())
        extended = FleetEngine(MODEL, _config(), failure_plan=overlapping).run(_trace())
        assert extended.fleet.slow_events == 2
        # The first window's end must not truncate the second: the longer
        # degradation stretches the makespan beyond the single-window run.
        assert extended.metrics.duration > short.metrics.duration
        assert extended.token_accounting_balanced

    def test_slowdown_ends_after_the_window(self):
        # A short window early in a long trace: the fleet recovers and the
        # run still meets the relaxed SLO for most requests.
        plan = FailurePlan(
            events=(
                FailureEvent(
                    time=0.2, kind="slow", replica_index=0, duration=1.0, slowdown=4.0
                ),
            )
        )
        result = FleetEngine(MODEL, _config(), failure_plan=plan).run(_trace(num=30))
        assert all(record.finished for record in result.records)


class TestUnreliableScenario:
    def test_scenario_survives_its_plan(self):
        scenario = get_fleet_scenario("unreliable")
        result = run_fleet_scenario(scenario, seed=0)
        assert result.fleet.crashes == scenario.failure_plan.crashes
        assert result.fleet.slow_events == scenario.failure_plan.slow_events
        assert all(record.finished for record in result.records)
        assert result.token_accounting_balanced

    def test_failures_can_be_stripped(self):
        scenario = get_fleet_scenario("unreliable")
        result = run_fleet_scenario(scenario, seed=0, with_failures=False)
        assert result.fleet.crashes == 0
        assert result.fleet.slow_events == 0
        assert result.fleet.rerouted_requests == 0
