"""Byte-deterministic goldens for the observability text renderers.

The CLI prints these tables verbatim, so their exact bytes are part of the
user-facing contract: one serving run (``chat``) and one fleet run
(``unreliable``) are rendered — event summary, tail attribution, anomaly
table — plus the two-run diff table on the prefix-cache A/B, and compared
against ``tests/goldens/obs-render-*.txt`` byte-for-byte.  Regenerate
deliberately with ``REPRO_REGEN_OBS_GOLDENS=1``.
"""

import os
from pathlib import Path

from repro.analysis.observability import (
    anomaly_table,
    attribution_table,
    diff_table,
    event_summary_table,
)
from repro.fleet.scenarios import FLEET_SCENARIO_REGISTRY, run_fleet_scenario
from repro.obs import (
    EventRecorder,
    build_attributions,
    detect_anomalies,
    diff_attributions,
)
from repro.serving.scenarios import SCENARIO_REGISTRY, run_scenario

GOLDEN_DIR = Path(__file__).parent / "goldens"
REGEN = os.environ.get("REPRO_REGEN_OBS_GOLDENS") == "1"


def _check(name, text):
    path = GOLDEN_DIR / f"obs-render-{name}.txt"
    if REGEN:
        path.write_text(text)
        return
    assert path.exists(), (
        f"missing golden {path.name}; regenerate with REPRO_REGEN_OBS_GOLDENS=1"
    )
    assert text == path.read_text()


def _render_bundle(recorder, label):
    attributions = build_attributions(recorder)
    anomalies = detect_anomalies(recorder)
    return "".join(
        [
            event_summary_table(recorder, title=f"recorded events | {label}"),
            "\n",
            attribution_table(attributions, title=f"latency attribution | {label}"),
            "\n",
            anomaly_table(anomalies, title=f"anomalies | {label}"),
        ]
    )


def test_serving_renderers_match_golden():
    recorder = EventRecorder()
    run_scenario(SCENARIO_REGISTRY["chat"], "colocated", seed=0, observe=recorder)
    _check("serving-chat", _render_bundle(recorder, "chat | colocated"))


def test_fleet_renderers_match_golden():
    recorder = EventRecorder()
    run_fleet_scenario(FLEET_SCENARIO_REGISTRY["unreliable"], seed=0, observe=recorder)
    _check("fleet-unreliable", _render_bundle(recorder, "unreliable"))


def test_diff_renderer_matches_golden():
    def attributions(**kwargs):
        recorder = EventRecorder()
        run_scenario(
            SCENARIO_REGISTRY["shared-system-prompt"],
            "colocated",
            seed=0,
            observe=recorder,
            **kwargs,
        )
        return build_attributions(recorder)

    diff = diff_attributions(attributions(), attributions(prefix_caching=False))
    _check("diff-prefix-cache", diff_table(diff, title="prefix caching on -> off"))


def test_anomaly_table_is_empty_safe():
    assert anomaly_table([], title="quiet run") == "quiet run: none detected\n"
