"""Tests for the training-system models (Megatron-LM, DeepSpeed, SlimPipe)."""

import pytest

from repro.constants import GIB
from repro.hardware.topology import hopper_cluster
from repro.model.config import LLAMA_13B, LLAMA_70B, MIXTRAL_8X7B
from repro.model.memory import RecomputeMode
from repro.parallel.config import ParallelConfig, WorkloadConfig
from repro.systems import (
    INFEASIBLE_NO_CONFIG,
    INFEASIBLE_OOM,
    AnalyticEstimator,
    DeepSpeedSystem,
    EstimatorSettings,
    MegatronSystem,
    SlimPipeSystem,
)


def workload(seq_k, tokens_m=4):
    return WorkloadConfig(
        sequence_length=seq_k * 1024, tokens_per_iteration=tokens_m * 1024 * 1024
    )


@pytest.fixture(scope="module")
def cluster128():
    return hopper_cluster(128)


@pytest.fixture(scope="module")
def cluster64():
    return hopper_cluster(64)


class TestAnalyticEstimator:
    def test_attention_share_grows_with_context(self, cluster128):
        est = AnalyticEstimator(LLAMA_13B, cluster128)
        shares = [est.attention_share(k * 1024) for k in (8, 64, 512)]
        assert shares == sorted(shares)
        assert shares[-1] > 0.5

    def test_compute_times_positive_and_backward_larger(self, cluster128):
        est = AnalyticEstimator(LLAMA_13B, cluster128)
        parallel = ParallelConfig(tensor_parallel_size=8, pipeline_parallel_size=4)
        fwd, bwd = est.microbatch_compute_seconds(parallel, 64 * 1024, RecomputeMode.NONE)
        assert 0 < fwd < bwd

    def test_full_recompute_increases_backward(self, cluster128):
        est = AnalyticEstimator(LLAMA_13B, cluster128)
        parallel = ParallelConfig(tensor_parallel_size=8, pipeline_parallel_size=4)
        _, none_bwd = est.microbatch_compute_seconds(parallel, 64 * 1024, RecomputeMode.NONE)
        _, full_bwd = est.microbatch_compute_seconds(parallel, 64 * 1024, RecomputeMode.FULL)
        _, sel_bwd = est.microbatch_compute_seconds(parallel, 64 * 1024, RecomputeMode.SELECTIVE)
        assert none_bwd < sel_bwd < full_bwd

    def test_more_passes_cost_more_overhead(self, cluster128):
        est = AnalyticEstimator(LLAMA_13B, cluster128)
        parallel = ParallelConfig(tensor_parallel_size=8, pipeline_parallel_size=4)
        one_f, _ = est.microbatch_compute_seconds(
            parallel, 64 * 1024, RecomputeMode.NONE, passes_per_microbatch=1
        )
        many_f, _ = est.microbatch_compute_seconds(
            parallel, 64 * 1024, RecomputeMode.NONE, passes_per_microbatch=64
        )
        assert many_f > one_f

    def test_comm_terms_zero_for_trivial_groups(self, cluster128):
        est = AnalyticEstimator(LLAMA_13B, cluster128)
        parallel = ParallelConfig()
        assert est.tp_comm_seconds_per_microbatch(parallel, 65536) == 0.0
        assert est.cp_comm_seconds_per_microbatch(parallel, 65536) == 0.0
        assert est.ep_comm_seconds_per_microbatch(parallel, 65536) == 0.0
        assert est.pp_comm_seconds_per_microbatch(parallel, 65536) == 0.0
        assert est.dp_sync_seconds(parallel) == 0.0
        assert est.ulysses_comm_seconds_per_microbatch(1, 65536) == 0.0
        assert est.zero3_param_traffic_seconds(1) == 0.0

    def test_comm_terms_positive_for_nontrivial_groups(self, cluster128):
        est = AnalyticEstimator(LLAMA_70B, cluster128)
        parallel = ParallelConfig(
            tensor_parallel_size=8,
            context_parallel_size=2,
            data_parallel_size=2,
            pipeline_parallel_size=4,
        )
        assert est.tp_comm_seconds_per_microbatch(parallel, 65536) > 0
        assert est.cp_comm_seconds_per_microbatch(parallel, 65536) > 0
        assert est.pp_comm_seconds_per_microbatch(parallel, 65536) > 0
        assert est.dp_sync_seconds(parallel) > 0

    def test_ep_comm_only_for_moe(self, cluster128):
        dense = AnalyticEstimator(LLAMA_70B, cluster128)
        moe = AnalyticEstimator(MIXTRAL_8X7B, cluster128)
        parallel = ParallelConfig(
            tensor_parallel_size=1, data_parallel_size=16, expert_parallel_size=8,
            pipeline_parallel_size=8,
        )
        assert dense.ep_comm_seconds_per_microbatch(parallel, 65536) == 0.0
        assert moe.ep_comm_seconds_per_microbatch(parallel, 65536) > 0.0

    def test_activation_bytes_match_paper_example(self, cluster128):
        """Section 3: Llama 70B, 1M context, full recompute, t=8 -> 160 GiB."""
        est = AnalyticEstimator(LLAMA_70B, cluster128)
        parallel = ParallelConfig(tensor_parallel_size=8)
        bytes_total = est.microbatch_activation_bytes(
            parallel, 1024 * 1024, RecomputeMode.FULL
        )
        assert bytes_total / GIB == pytest.approx(160.0, rel=0.01)

    def test_usable_memory_below_capacity(self, cluster128):
        est = AnalyticEstimator(LLAMA_13B, cluster128)
        assert est.usable_memory_bytes() < cluster128.gpu.memory_bytes


class TestMegatronSystem:
    def test_finds_feasible_config_at_64k(self, cluster128):
        est = MegatronSystem().best_configuration(LLAMA_70B, cluster128, workload(64))
        assert est.feasible
        assert 0.2 < est.mfu < 0.6
        assert est.peak_memory_bytes < cluster128.gpu.memory_bytes

    def test_oom_at_very_long_context(self, cluster128):
        est = MegatronSystem().best_configuration(LLAMA_70B, cluster128, workload(512))
        assert not est.feasible
        assert est.reason == INFEASIBLE_OOM

    def test_recompute_escalates_with_context(self, cluster128):
        short = MegatronSystem().best_configuration(LLAMA_13B, cluster128, workload(32))
        long = MegatronSystem().best_configuration(LLAMA_13B, cluster128, workload(256))
        assert short.feasible and long.feasible
        ladder = [RecomputeMode.NONE, RecomputeMode.SELECTIVE, RecomputeMode.FULL]
        assert ladder.index(long.recompute) >= ladder.index(short.recompute)

    def test_describe_mentions_system(self, cluster128):
        est = MegatronSystem().best_configuration(LLAMA_13B, cluster128, workload(64))
        assert "megatron-lm" in est.describe()

    def test_evaluate_single_config(self, cluster64):
        system = MegatronSystem()
        parallel = ParallelConfig(
            tensor_parallel_size=8, pipeline_parallel_size=4, data_parallel_size=2
        )
        est = system.evaluate(LLAMA_13B, cluster64, workload(64), parallel)
        assert est.feasible
        assert est.num_microbatches == workload(64).num_microbatches(parallel)


class TestDeepSpeedSystem:
    def test_feasible_at_moderate_context(self, cluster128):
        est = DeepSpeedSystem().best_configuration(LLAMA_70B, cluster128, workload(64))
        assert est.feasible
        assert est.parallel.pipeline_parallel_size == 1
        assert est.parallel.tensor_parallel_size == 1

    def test_ulysses_capped_by_query_groups(self, cluster128):
        for cfg in DeepSpeedSystem().candidate_configs(LLAMA_70B, cluster128, workload(64)):
            assert cfg.context_parallel_size <= LLAMA_70B.kv_groups

    def test_no_configuration_when_batch_too_small(self, cluster128):
        """512K context -> 8 sequences < minimum DP of 16: the Figure 12 failure."""
        est = DeepSpeedSystem().best_configuration(LLAMA_70B, cluster128, workload(512))
        assert not est.feasible
        assert est.reason == INFEASIBLE_NO_CONFIG

    def test_zero_bubbles(self, cluster128):
        est = DeepSpeedSystem().best_configuration(LLAMA_13B, cluster128, workload(64))
        assert est.feasible
        assert est.bubble_fraction == 0.0


class TestSlimPipeSystem:
    def test_feasible_and_fastest_at_long_context(self, cluster128):
        wl = workload(256)
        slim = SlimPipeSystem().best_configuration(LLAMA_70B, cluster128, wl)
        megatron = MegatronSystem().best_configuration(LLAMA_70B, cluster128, wl)
        assert slim.feasible
        assert slim.mfu > megatron.mfu

    def test_speedup_grows_with_context_length(self, cluster128):
        """Figure 12's headline trend: SlimPipe's advantage widens with context."""
        ratios = []
        for seq_k in (64, 256):
            slim = SlimPipeSystem().best_configuration(LLAMA_70B, cluster128, workload(seq_k))
            base = MegatronSystem().best_configuration(LLAMA_70B, cluster128, workload(seq_k))
            assert slim.feasible and base.feasible
            ratios.append(slim.mfu / base.mfu)
        assert ratios[1] > ratios[0]

    def test_survives_contexts_where_baselines_fail(self, cluster128):
        wl = workload(512)
        slim = SlimPipeSystem().best_configuration(LLAMA_70B, cluster128, wl)
        megatron = MegatronSystem().best_configuration(LLAMA_70B, cluster128, wl)
        deepspeed = DeepSpeedSystem().best_configuration(LLAMA_70B, cluster128, wl)
        assert slim.feasible
        assert not megatron.feasible
        assert not deepspeed.feasible

    def test_avoids_full_recompute_longer_than_megatron(self, cluster128):
        """The memory-thrift pays as avoided recomputation (Section 6.4)."""
        wl = workload(256)
        slim = SlimPipeSystem().best_configuration(LLAMA_70B, cluster128, wl)
        base = MegatronSystem().best_configuration(LLAMA_70B, cluster128, wl)
        ladder = [RecomputeMode.NONE, RecomputeMode.SELECTIVE, RecomputeMode.FULL]
        assert ladder.index(slim.recompute) <= ladder.index(base.recompute)

    def test_works_with_tiny_microbatch_count(self, cluster128):
        """SlimPipe keeps working with as few as 2 microbatches (Section 6.4)."""
        system = SlimPipeSystem()
        parallel = ParallelConfig(
            tensor_parallel_size=8,
            pipeline_parallel_size=16,
            data_parallel_size=1,
            num_slices=32,
        )
        wl = workload(256, tokens_m=1)  # 4 sequences -> m=4
        est = system.evaluate(LLAMA_70B, cluster128, wl, parallel)
        assert est.feasible
        assert est.bubble_fraction < 0.1

    def test_offload_extends_reachable_context(self):
        """Table 4: with offloading SlimPipe reaches contexts it otherwise cannot."""
        cluster = hopper_cluster(256)
        wl = WorkloadConfig(
            sequence_length=2048 * 1024, tokens_per_iteration=16 * 1024 * 1024
        )
        without = SlimPipeSystem(allow_offload=False).best_configuration(
            LLAMA_70B, cluster, wl
        )
        with_offload = SlimPipeSystem(allow_offload=True).best_configuration(
            LLAMA_70B, cluster, wl
        )
        assert with_offload.feasible
        assert with_offload.mfu > 0.2
        if without.feasible:
            assert without.mfu <= with_offload.mfu + 0.05

    def test_context_exchange_ablation_reduces_mfu_when_disabled(self, cluster128):
        wl = workload(256)
        on = SlimPipeSystem(context_exchange=True).best_configuration(
            LLAMA_13B, cluster128, wl
        )
        off = SlimPipeSystem(context_exchange=False).best_configuration(
            LLAMA_13B, cluster128, wl
        )
        assert on.feasible and off.feasible
        assert on.mfu > off.mfu

    def test_moe_model_supported(self, cluster128):
        est = SlimPipeSystem().best_configuration(MIXTRAL_8X7B, cluster128, workload(128))
        assert est.feasible
        assert est.parallel.expert_parallel_size >= 1

    def test_slimpipe_memory_below_megatron(self, cluster64):
        wl = workload(64)
        parallel = ParallelConfig(
            tensor_parallel_size=8, pipeline_parallel_size=8, num_slices=16
        )
        slim = SlimPipeSystem().evaluate(LLAMA_13B, cluster64, wl, parallel)
        base_parallel = ParallelConfig(tensor_parallel_size=8, pipeline_parallel_size=8)
        base = MegatronSystem().evaluate(LLAMA_13B, cluster64, wl, base_parallel)
        assert slim.feasible and base.feasible
        if slim.recompute == base.recompute:
            assert slim.peak_memory_bytes < base.peak_memory_bytes
