"""Tests for the PP-aware activation offload planner (Section 6.5, Table 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import GIB
from repro.core.offload import OffloadPlanner
from repro.hardware.gpu import HOPPER_80GB


@pytest.fixture()
def planner():
    return OffloadPlanner(HOPPER_80GB)


class TestRequiredRatio:
    def test_zero_when_it_fits(self, planner):
        assert planner.required_ratio(10 * GIB, 20 * GIB) == 0.0

    def test_one_when_no_budget(self, planner):
        assert planner.required_ratio(10 * GIB, 0.0) == 1.0

    def test_rounds_up_to_granularity(self, planner):
        # Need to shed 30% exactly -> 0.30; need 31% -> 0.35.
        assert planner.required_ratio(100.0, 70.0) == pytest.approx(0.30)
        assert planner.required_ratio(100.0, 69.0) == pytest.approx(0.35)

    def test_never_exceeds_one(self, planner):
        assert planner.required_ratio(1e15, 1.0) <= 1.0

    def test_rejects_negative(self, planner):
        with pytest.raises(ValueError):
            planner.required_ratio(-1.0, 1.0)

    @settings(max_examples=50, deadline=None)
    @given(
        peak=st.floats(min_value=1.0, max_value=1e12),
        budget=st.floats(min_value=0.0, max_value=1e12),
    )
    def test_property_chosen_ratio_is_feasible(self, peak, budget):
        planner = OffloadPlanner(HOPPER_80GB)
        ratio = planner.required_ratio(peak, budget)
        assert 0.0 <= ratio <= 1.0
        assert peak * (1.0 - ratio) <= budget + 1e-6 * peak or ratio == 1.0


class TestPlan:
    def test_fits_without_offload(self, planner):
        decision = planner.plan(40 * GIB, 60 * GIB, GIB, 0.1)
        assert decision.ratio == 0.0
        assert decision.feasible
        assert decision.fully_overlapped
        assert decision.offloaded_bytes == 0.0

    def test_offload_makes_it_fit(self, planner):
        decision = planner.plan(100 * GIB, 60 * GIB, GIB, 0.5)
        assert decision.ratio >= 0.4
        assert decision.feasible
        assert decision.resident_bytes <= 60 * GIB + 1e-3

    def test_transfer_overlap(self, planner):
        # 1 GiB slice at 55 GiB/s ~ 18 ms; a 100 ms compute window hides it.
        decision = planner.plan(100 * GIB, 60 * GIB, GIB, 0.1)
        assert decision.fully_overlapped

    def test_transfer_exposed_when_compute_too_short(self, planner):
        decision = planner.plan(100 * GIB, 10 * GIB, 4 * GIB, 0.001)
        assert decision.exposed_seconds_per_slice > 0.0

    def test_forced_ratio(self, planner):
        decision = planner.plan(100 * GIB, 60 * GIB, GIB, 0.1, ratio=0.95)
        assert decision.ratio == 0.95
        assert decision.offloaded_bytes == pytest.approx(95 * GIB)

    def test_forced_infeasible_ratio_reported(self, planner):
        decision = planner.plan(100 * GIB, 10 * GIB, GIB, 0.1, ratio=0.1)
        assert not decision.feasible

    def test_invalid_ratio_rejected(self, planner):
        with pytest.raises(ValueError):
            planner.plan(GIB, GIB, GIB, 0.1, ratio=1.5)

    def test_invalid_granularity_rejected(self):
        with pytest.raises(ValueError):
            OffloadPlanner(HOPPER_80GB, ratio_granularity=0.0)

    def test_negative_inputs_rejected(self, planner):
        with pytest.raises(ValueError):
            planner.plan(GIB, GIB, -1.0, 0.1)


class TestMaxContextScaling:
    def test_scaling_factor(self, planner):
        assert planner.max_context_scaling(10 * GIB, 40 * GIB) == pytest.approx(4.0)

    def test_infinite_when_nothing_to_offload(self, planner):
        assert planner.max_context_scaling(0.0, GIB) == float("inf")
