"""Tests for the text-rendering helpers of the analysis layer."""

import pytest

from repro.analysis.report import (
    format_bytes,
    format_percent,
    render_markdown_table,
    render_table,
)


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(["a", "bbb"], [(1, 2), (333, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert lines[2].startswith("-")
        assert len(lines) == 5

    def test_no_title(self):
        text = render_table(["x"], [(1,)])
        assert text.splitlines()[0].strip() == "x"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1,)])

    def test_columns_are_aligned(self):
        text = render_table(["col", "v"], [("short", 1), ("much-longer-cell", 2)])
        lines = text.splitlines()
        positions = [line.index("1") if "1" in line else line.index("2") for line in lines[2:]]
        assert len(set(positions)) == 1


class TestRenderMarkdownTable:
    def test_structure(self):
        text = render_markdown_table(["a", "b"], [(1, 2)])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_markdown_table(["a"], [(1, 2)])


class TestFormatters:
    def test_format_bytes_units(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KiB"
        assert format_bytes(3 * 1024**2) == "3.0 MiB"
        assert format_bytes(5 * 1024**3) == "5.0 GiB"

    def test_format_percent(self):
        assert format_percent(0.4567) == "45.7%"
        assert format_percent(0.4567, digits=0) == "46%"
