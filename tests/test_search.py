"""Tests for hybrid-parallelism candidate enumeration and grid search."""

import pytest

from repro.hardware.topology import hopper_cluster
from repro.model.config import LLAMA_13B, LLAMA_70B, MIXTRAL_8X7B
from repro.parallel.config import WorkloadConfig
from repro.parallel.search import (
    SearchSpace,
    candidate_parallel_configs,
    divisors,
    grid_search,
)


def workload(seq_k=64, tokens_m=4):
    return WorkloadConfig(
        sequence_length=seq_k * 1024, tokens_per_iteration=tokens_m * 1024 * 1024
    )


class TestDivisors:
    def test_basic(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]

    def test_ceiling(self):
        assert divisors(12, ceiling=4) == [1, 2, 3, 4]

    def test_ceiling_of_one_keeps_the_trivial_divisor(self):
        assert divisors(12, ceiling=1) == [1]

    def test_validation(self):
        with pytest.raises(ValueError, match="got 0"):
            divisors(0)
        with pytest.raises(ValueError, match="got -3"):
            divisors(-3)

    def test_zero_or_negative_ceiling_is_loud_not_empty(self):
        # A ceiling below 1 used to return [] silently, which downstream
        # turns into "no-configuration" everywhere; it must raise instead.
        with pytest.raises(ValueError, match="ceiling must be >= 1"):
            divisors(12, ceiling=0)
        with pytest.raises(ValueError, match="ceiling must be >= 1"):
            divisors(12, ceiling=-2)


class TestCandidateEnumeration:
    def test_configs_use_whole_cluster(self):
        cluster = hopper_cluster(64)
        for cfg in candidate_parallel_configs(LLAMA_13B, cluster, workload()):
            assert cfg.world_size == 64

    def test_tensor_parallel_stays_in_node_and_divides_heads(self):
        cluster = hopper_cluster(64)
        for cfg in candidate_parallel_configs(LLAMA_70B, cluster, workload()):
            assert cfg.tensor_parallel_size <= 8
            assert LLAMA_70B.num_attention_heads % cfg.tensor_parallel_size == 0
            # GQA: TP cannot exceed the number of KV groups.
            assert cfg.tensor_parallel_size <= LLAMA_70B.kv_groups

    def test_pipeline_divides_layers(self):
        cluster = hopper_cluster(64)
        for cfg in candidate_parallel_configs(LLAMA_13B, cluster, workload()):
            assert LLAMA_13B.num_layers % cfg.pipeline_parallel_size == 0
            assert LLAMA_13B.num_layers % cfg.total_stages == 0

    def test_batch_divides_over_dp(self):
        cluster = hopper_cluster(64)
        wl = workload(seq_k=128)
        for cfg in candidate_parallel_configs(LLAMA_13B, cluster, wl):
            assert wl.global_batch_sequences % cfg.data_parallel_size == 0

    def test_moe_expert_parallel_divides_experts(self):
        cluster = hopper_cluster(64)
        for cfg in candidate_parallel_configs(MIXTRAL_8X7B, cluster, workload()):
            assert MIXTRAL_8X7B.num_experts % cfg.expert_parallel_size == 0
            assert cfg.expert_parallel_size <= cfg.data_parallel_size * cfg.context_parallel_size

    def test_slices_are_multiples_of_pipeline(self):
        cluster = hopper_cluster(64)
        configs = list(
            candidate_parallel_configs(LLAMA_13B, cluster, workload(), use_slices=True)
        )
        assert configs
        for cfg in configs:
            assert cfg.num_slices is not None
            assert cfg.num_slices % cfg.pipeline_parallel_size == 0

    def test_interleave_divisibility_filter(self):
        cluster = hopper_cluster(128)
        wl = workload(seq_k=512)  # 8 sequences per iteration -> small m
        strict = list(
            candidate_parallel_configs(
                LLAMA_13B, cluster, wl, require_interleave_divisibility=True
            )
        )
        relaxed = list(
            candidate_parallel_configs(
                LLAMA_13B, cluster, wl, require_interleave_divisibility=False
            )
        )
        assert len(strict) <= len(relaxed)
        for cfg in strict:
            if cfg.virtual_pipeline_size > 1:
                m = wl.global_batch_sequences // cfg.data_parallel_size
                assert m % cfg.pipeline_parallel_size == 0

    def test_no_pipeline_option(self):
        cluster = hopper_cluster(8)
        configs = list(
            candidate_parallel_configs(LLAMA_13B, cluster, workload(), use_pipeline=False)
        )
        assert configs
        assert all(cfg.pipeline_parallel_size == 1 for cfg in configs)

    def test_empty_when_cluster_too_small_for_batch(self):
        """Sequences per iteration < DP size for every config -> nothing viable."""
        cluster = hopper_cluster(4096)
        wl = WorkloadConfig(sequence_length=2048 * 1024, tokens_per_iteration=4 * 1024 * 1024)
        configs = list(candidate_parallel_configs(LLAMA_13B, cluster, wl))
        # 2 sequences over >= 4096/(8*32) = 16 DP replicas can never divide evenly.
        assert all(cfg.data_parallel_size <= 2 for cfg in configs)

    def test_search_space_limits_respected(self):
        cluster = hopper_cluster(64)
        space = SearchSpace(max_pipeline_parallel=4, max_virtual_stages=2, slice_multipliers=(1,))
        for cfg in candidate_parallel_configs(
            LLAMA_13B, cluster, workload(), space, use_slices=True
        ):
            assert cfg.pipeline_parallel_size <= 4
            assert cfg.virtual_pipeline_size <= 2
            assert cfg.num_slices == cfg.pipeline_parallel_size


class TestGridSearch:
    def test_picks_maximum(self):
        cluster = hopper_cluster(32)
        candidates = list(candidate_parallel_configs(LLAMA_13B, cluster, workload()))
        best, value = grid_search(candidates, lambda c: float(c.pipeline_parallel_size))
        assert best is not None
        assert value == max(c.pipeline_parallel_size for c in candidates)

    def test_all_infeasible(self):
        best, value = grid_search([], lambda c: 1.0)
        assert best is None
        assert value == float("-inf")

    def test_none_objective_skipped(self):
        cluster = hopper_cluster(32)
        candidates = list(candidate_parallel_configs(LLAMA_13B, cluster, workload()))
        best, _ = grid_search(candidates, lambda c: None)
        assert best is None
