"""Tests for serving metrics (repro.serving.metrics)."""

import pytest

from repro.serving.metrics import SLO, RequestRecord, compute_metrics, percentile
from repro.serving.workload import Request


class TestPercentile:
    def test_endpoints_and_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


def _record(arrival, first, finish, prompt=100, output=11):
    record = RequestRecord(Request(0, arrival, prompt, output))
    record.first_token_time = first
    record.finish_time = finish
    return record


class TestRequestRecord:
    def test_latencies(self):
        record = _record(arrival=1.0, first=3.0, finish=8.0, output=11)
        assert record.ttft == pytest.approx(2.0)
        assert record.tpot == pytest.approx(0.5)  # 5 s over 10 decode tokens
        assert record.e2e_latency == pytest.approx(7.0)

    def test_single_token_output_has_zero_tpot(self):
        record = _record(arrival=0.0, first=2.0, finish=2.0, output=1)
        assert record.tpot == 0.0

    def test_unfinished_raises(self):
        record = RequestRecord(Request(0, 0.0, 10, 5))
        assert not record.finished
        with pytest.raises(ValueError):
            _ = record.ttft

    def test_slo(self):
        slo = SLO(ttft=1.0, tpot=0.1)
        good = _record(arrival=0.0, first=0.5, finish=1.0, output=11)
        assert good.meets(slo)
        slow_first = _record(arrival=0.0, first=1.5, finish=2.0, output=11)
        assert not slow_first.meets(slo)
        slow_decode = _record(arrival=0.0, first=0.5, finish=3.0, output=11)
        assert not slow_decode.meets(slo)


class TestComputeMetrics:
    def test_aggregates(self):
        records = [
            _record(0.0, 0.5, 1.5),
            _record(0.0, 1.0, 3.0),
            _record(0.0, 2.0, 6.0),
        ]
        metrics = compute_metrics(
            records,
            duration=6.0,
            slo=SLO(ttft=1.5, tpot=0.5),
            kv_utilization_mean=0.4,
            kv_utilization_peak=0.9,
            preemptions=3,
        )
        assert metrics.num_requests == 3
        assert metrics.ttft_p50 == pytest.approx(1.0)
        assert metrics.goodput_fraction == pytest.approx(2 / 3)
        assert metrics.requests_per_second == pytest.approx(0.5)
        assert metrics.output_tokens_per_second == pytest.approx(33 / 6.0)
        assert metrics.kv_utilization_peak == 0.9
        assert metrics.preemptions == 3

    def test_p95_percentiles_reported(self):
        # 21 records with linearly spaced latencies make every percentile an
        # exact interpolation point: p95 of [0..20] is 19, p50 is 10.
        records = [
            _record(0.0, 0.1 * i + 0.1, 0.1 * i + 0.1 + i, output=11)
            for i in range(21)
        ]
        metrics = compute_metrics(records, duration=30.0, slo=SLO())
        assert metrics.tpot_p95 == pytest.approx(percentile([r.tpot for r in records], 95))
        assert metrics.e2e_p95 == pytest.approx(percentile([r.e2e_latency for r in records], 95))
        assert metrics.tpot_p50 <= metrics.tpot_p95 <= metrics.tpot_p99
        assert metrics.e2e_p50 <= metrics.e2e_p95 <= metrics.e2e_p99
        rows = dict(metrics.to_rows())
        assert "TPOT p50 / p95 / p99" in rows
        assert "E2E p50 / p95 / p99" in rows

    def test_unfinished_excluded(self):
        records = [_record(0.0, 0.5, 1.5), RequestRecord(Request(1, 0.0, 10, 5))]
        metrics = compute_metrics(records, 2.0, SLO())
        assert metrics.num_requests == 1

    def test_no_finished_raises(self):
        with pytest.raises(ValueError):
            compute_metrics([RequestRecord(Request(0, 0.0, 10, 5))], 1.0, SLO())

    def test_to_text_renders(self):
        metrics = compute_metrics([_record(0.0, 0.5, 1.5)], 2.0, SLO())
        text = metrics.to_text(title="test table")
        assert "test table" in text
        assert "TTFT" in text and "goodput" in text.lower()
