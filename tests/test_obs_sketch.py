"""Accuracy contract of the P² streaming quantile sketch.

:mod:`repro.obs.sketch` documents three guarantees and this suite pins all
of them:

* **exact up to five samples** — bit-identical to
  :class:`repro.serving.metrics.PercentileSummary` (same interpolation
  arithmetic on the same sorted buffer);
* **bounded beyond** — the estimate always lies inside the observed
  min/max, and for arbitrary (hypothesis-generated, adversarially ordered)
  streams it stays within the documented combined bound: between the exact
  quantiles at ``q ± (0.15 + 3/n)``, widened by ``(0.35 + 1/n)`` of the
  sample range (the rank window absorbs wide gaps between order
  statistics, the range slack absorbs P²'s lag on sorted/bimodal
  orderings);
* **tight on well-behaved data** — under 1% of the range on large uniform
  samples;

plus determinism (same stream, same estimate) and the empty-sketch errors.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.sketch import P2Quantile, QuantileSketch
from repro.serving.metrics import PercentileSummary

_SAMPLES = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=400,
)


@settings(max_examples=60, deadline=None)
@given(values=_SAMPLES, q=st.sampled_from([0.5, 0.9, 0.95, 0.99]))
def test_p2_error_bounded_for_arbitrary_streams(values, q):
    sketch = P2Quantile(q)
    for value in values:
        sketch.add(value)
    estimate = sketch.value()
    assert min(values) <= estimate <= max(values)
    # The documented adversarial bound (see repro.obs.sketch): the estimate
    # lies between the exact quantiles at q ± (0.15 + 3/n), further widened
    # by (0.35 + 1/n) of the sample range.
    n = len(values)
    span = max(values) - min(values)
    rank_tol = 0.15 + 3.0 / n
    slack = span * (0.35 + 1.0 / n) + 1e-9
    exact = PercentileSummary(values)
    lo = exact.at(max(0.0, q - rank_tol) * 100.0) - slack
    hi = exact.at(min(1.0, q + rank_tol) * 100.0) + slack
    assert lo <= estimate <= hi


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False), min_size=1, max_size=5))
def test_exact_up_to_five_samples(values):
    sketch = P2Quantile(0.95)
    for value in values:
        sketch.add(value)
    assert sketch.value() == PercentileSummary(values).at(95.0)
    assert sketch.count == len(values)


@pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
def test_tight_on_large_uniform_sample(q):
    rng = random.Random(7)
    sketch = P2Quantile(q)
    values = [rng.uniform(0.0, 100.0) for _ in range(20000)]
    for value in values:
        sketch.add(value)
    exact = PercentileSummary(values).at(q * 100.0)
    assert abs(sketch.value() - exact) <= 1.0  # 1% of the 100-wide range


def test_tight_on_normal_sample():
    rng = random.Random(11)
    sketch = P2Quantile(0.95)
    values = [rng.gauss(50.0, 10.0) for _ in range(20000)]
    for value in values:
        sketch.add(value)
    exact = PercentileSummary(values).at(95.0)
    assert abs(sketch.value() - exact) <= 0.01 * (max(values) - min(values))


def test_deterministic_for_identical_streams():
    values = [math.sin(i * 0.7) * 40.0 + i % 13 for i in range(5000)]

    def run():
        sketch = P2Quantile(0.99)
        for value in values:
            sketch.add(value)
        return sketch.value()

    assert run() == run()


def test_empty_sketch_raises_with_quantile_name():
    with pytest.raises(ValueError, match="p95"):
        P2Quantile(0.95).value()


def test_q_must_be_a_fraction():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)
    with pytest.raises(ValueError):
        P2Quantile(95.0)


def test_quantile_sketch_bundle():
    rng = random.Random(3)
    bundle = QuantileSketch("ttft")
    values = [rng.expovariate(1.0) for _ in range(2000)]
    for value in values:
        bundle.add(value)
    summary = bundle.summary()
    assert summary["count"] == 2000
    assert summary["min"] == min(values)
    assert summary["max"] == max(values)
    assert summary["mean"] == pytest.approx(sum(values) / len(values))
    assert summary["min"] <= summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["max"]
    with pytest.raises(KeyError, match="p75"):
        bundle.quantile(0.75)


def test_quantile_sketch_empty_summary():
    assert QuantileSketch("tpot").summary() == {"count": 0}
