"""Determinism guard: same seed + scenario => byte-identical metrics.

The fleet engine added real RNG plumbing (trace seeds, failure plans) and a
cluster event heap on top of the serving simulator; this suite pins the
property every golden and cache entry relies on — a run is a pure function
of (scenario, seed), down to the exact float bits.  The comparison goes
through ``canonical_json`` of the full evaluator metric dictionaries, so any
nondeterminism (set iteration, heap tie-breaks, id()-keyed ordering) shows
up as a byte diff, not a tolerance miss.
"""

from repro.sweep.evaluators import evaluate_fleet_scenario, evaluate_serving_scenario
from repro.sweep.spec import canonical_json


def _fleet_bytes(**point):
    return canonical_json(evaluate_fleet_scenario(point)).encode("utf-8")


def _serving_bytes(**point):
    return canonical_json(evaluate_serving_scenario(point)).encode("utf-8")


class TestFleetDeterminism:
    def test_same_seed_is_byte_identical(self):
        point = dict(scenario="canary-chat", seed=3)
        assert _fleet_bytes(**point) == _fleet_bytes(**point)

    def test_failure_injection_is_deterministic(self):
        point = dict(scenario="unreliable", seed=0)
        assert _fleet_bytes(**point) == _fleet_bytes(**point)

    def test_autoscaled_run_is_deterministic(self):
        point = dict(scenario="flash-crowd", seed=1)
        assert _fleet_bytes(**point) == _fleet_bytes(**point)

    def test_different_seeds_differ(self):
        assert _fleet_bytes(scenario="canary-chat", seed=0) != _fleet_bytes(
            scenario="canary-chat", seed=1
        )

    def test_router_changes_the_assignment_not_the_workload(self):
        a = evaluate_fleet_scenario({"scenario": "hetero-mixed", "seed": 0, "router": "round-robin"})
        b = evaluate_fleet_scenario({"scenario": "hetero-mixed", "seed": 0, "router": "least-tokens"})
        assert a["num_requests"] == b["num_requests"]
        assert a["ttft_p99"] != b["ttft_p99"]


class TestServingDeterminism:
    def test_same_seed_is_byte_identical(self):
        point = dict(scenario="chat", mode="colocated", seed=2)
        assert _serving_bytes(**point) == _serving_bytes(**point)

    def test_disaggregated_is_deterministic_too(self):
        point = dict(scenario="chat", mode="disaggregated", seed=2)
        assert _serving_bytes(**point) == _serving_bytes(**point)
