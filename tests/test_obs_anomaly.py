"""Anomaly detectors and the incident/postmortem pipeline.

The detectors are pure functions over windowed interval rows (gap rows
included), so each one is unit-tested on synthetic series first; then the
full pipeline — detect anomalies on a recorded run, correlate them with
cluster events, render the postmortem — is pinned byte-exactly on the
``unreliable`` fleet scenario, whose injected crash and slow window must
come out named as root causes (regenerate the golden deliberately with
``REPRO_REGEN_OBS_GOLDENS=1``).
"""

import os
from pathlib import Path

import pytest

from repro.fleet.scenarios import FLEET_SCENARIO_REGISTRY, run_fleet_scenario
from repro.obs import EventRecorder, detect_anomalies, incident_report, render_postmortem
from repro.obs.anomaly import (
    EWMA_SPIKE,
    LEVEL_SHIFT,
    SLO_BURN,
    burn_anomalies,
    ewma_anomalies,
    hit_rate_intervals,
    level_shift_anomalies,
)
from repro.obs.incident import write_incident_report
from repro.obs.slo import BurnWindow, SLOReport
from repro.serving.scenarios import SCENARIO_REGISTRY, run_scenario

GOLDEN_DIR = Path(__file__).parent / "goldens"
REGEN = os.environ.get("REPRO_REGEN_OBS_GOLDENS") == "1"


def _rows(values, window=5.0):
    """Interval rows from a list of means (None = gap), aligned at t=0."""
    return [
        {
            "start": i * window,
            "end": (i + 1) * window,
            "count": 0 if value is None else 1,
            "mean": value,
            "min": value,
            "max": value,
        }
        for i, value in enumerate(values)
    ]


class TestEwma:
    def test_flags_a_spike_after_warmup(self):
        rows = _rows([1.0, 1.0, 1.0, 1.0, 10.0, 1.0])
        anomalies = ewma_anomalies("ttft", rows)
        assert [a.kind for a in anomalies] == [EWMA_SPIKE]
        spike = anomalies[0]
        assert spike.value == 10.0
        assert spike.window == (20.0, 25.0)
        assert spike.time == 25.0
        assert spike.severity > 3.0

    def test_quiet_series_is_clean(self):
        assert ewma_anomalies("ttft", _rows([1.0, 1.01, 0.99, 1.0, 1.02])) == []

    def test_gap_rows_freeze_the_tracker(self):
        with_gaps = _rows([1.0, 1.0, None, None, 1.0, 10.0])
        without = _rows([1.0, 1.0, 1.0, 10.0])
        assert [a.value for a in ewma_anomalies("m", with_gaps, warmup=2)] == [
            a.value for a in ewma_anomalies("m", without, warmup=2)
        ]

    def test_warmup_suppresses_early_windows(self):
        # The same spike inside the warm-up window must not fire.
        assert ewma_anomalies("m", _rows([1.0, 10.0]), warmup=3) == []

    def test_severity_is_clamped_on_flat_baselines(self):
        rows = _rows([0.0, 0.0, 0.0, 0.0, 0.5])
        anomalies = ewma_anomalies("queue_depth", rows)
        assert len(anomalies) == 1
        assert abs(anomalies[0].severity) <= 99.0


class TestLevelShift:
    def test_flags_a_sustained_doubling_once(self):
        rows = _rows([1.0, 1.0, 1.0, 3.0, 3.0, 3.0, 3.0])
        anomalies = level_shift_anomalies("ttft", rows)
        assert [a.kind for a in anomalies] == [LEVEL_SHIFT]
        assert anomalies[0].baseline == pytest.approx(1.0)
        assert anomalies[0].value == pytest.approx(3.0)

    def test_single_window_blip_is_not_a_shift(self):
        # A lone blip the 3-window group mean absorbs (5/3 < 2x) is the
        # EWMA detector's business, not a level change.
        rows = _rows([1.0, 1.0, 1.0, 3.0, 1.0, 1.0, 1.0])
        assert level_shift_anomalies("ttft", rows) == []

    def test_downward_shift_also_fires(self):
        rows = _rows([4.0, 4.0, 4.0, 1.0, 1.0, 1.0])
        anomalies = level_shift_anomalies("ttft", rows)
        assert len(anomalies) == 1
        assert anomalies[0].value < anomalies[0].baseline


class TestBurn:
    @staticmethod
    def _window(start, burn, attainment=0.5):
        good = int(10 * attainment)
        return BurnWindow(
            start=start,
            end=start + 10.0,
            requests=10,
            good_requests=good,
            total_tokens=1000,
            good_tokens=100 * good,
            burn_rate=burn,
        )

    def _report(self, windows):
        return SLOReport(window=10.0, target=0.95, burn_threshold=1.0, windows=windows)

    def test_escalates_consecutive_burns(self):
        report = self._report(
            [self._window(0.0, 0.5), self._window(10.0, 2.0), self._window(20.0, 3.0)]
        )
        anomalies = burn_anomalies(report, consecutive=2)
        assert [a.kind for a in anomalies] == [SLO_BURN]
        assert anomalies[0].window == (10.0, 30.0)
        assert anomalies[0].severity == 3.0  # peak burn rate of the run

    def test_single_burning_window_is_not_escalated(self):
        report = self._report([self._window(0.0, 2.0), self._window(10.0, 0.5)])
        assert burn_anomalies(report, consecutive=2) == []

    def test_non_adjacent_burns_do_not_chain(self):
        # SLOReport skips empty windows, so list adjacency is not time
        # adjacency: a gap between burning windows breaks the run.
        report = self._report([self._window(0.0, 2.0), self._window(30.0, 2.0)])
        assert burn_anomalies(report, consecutive=2) == []


def test_hit_rate_intervals_empty_without_cache():
    recorder = EventRecorder()
    run_scenario(SCENARIO_REGISTRY["chat"], "colocated", seed=0, observe=recorder)
    assert hit_rate_intervals(recorder, 5.0) == []


def test_hit_rate_intervals_track_the_cache():
    recorder = EventRecorder()
    run_scenario(
        SCENARIO_REGISTRY["shared-system-prompt"], "colocated", seed=0, observe=recorder
    )
    rows = hit_rate_intervals(recorder, 5.0)
    assert rows
    sampled = [row["mean"] for row in rows if row["mean"] is not None]
    assert sampled and all(0.0 <= rate <= 1.0 for rate in sampled)


def _unreliable_recorder():
    recorder = EventRecorder()
    run_fleet_scenario(FLEET_SCENARIO_REGISTRY["unreliable"], seed=0, observe=recorder)
    return recorder


def test_detect_anomalies_on_unreliable_is_sorted_and_typed():
    anomalies = detect_anomalies(_unreliable_recorder())
    assert anomalies
    assert all(a.kind in (EWMA_SPIKE, LEVEL_SHIFT, SLO_BURN) for a in anomalies)
    keys = [(a.time, a.metric, a.kind) for a in anomalies]
    assert keys == sorted(keys)


def test_unreliable_postmortem_names_injected_failures():
    scenario = FLEET_SCENARIO_REGISTRY["unreliable"]
    report = incident_report(
        _unreliable_recorder(), slo=scenario.slo, title="unreliable"
    )
    assert report.incidents, "the crash/slow scenario must produce an incident"
    causes = [moment for incident in report.incidents for moment in incident.causes]
    assert any(moment.kind == "crash" for moment in causes)
    assert any(moment.kind == "slow" for moment in causes)
    markdown = render_postmortem(report)
    assert "# Postmortem: unreliable" in markdown
    assert "## Cluster timeline" in markdown

    golden = GOLDEN_DIR / "obs-postmortem-unreliable.md"
    if REGEN:
        golden.write_text(markdown)
    else:
        assert golden.exists(), (
            "missing postmortem golden; regenerate with REPRO_REGEN_OBS_GOLDENS=1"
        )
        assert markdown == golden.read_text()


def test_incident_report_json_artifact_embeds_markdown(tmp_path):
    scenario = FLEET_SCENARIO_REGISTRY["unreliable"]
    report = incident_report(_unreliable_recorder(), slo=scenario.slo, title="t")
    json_path = write_incident_report(report, str(tmp_path / "incident.json"))
    import json as json_module

    payload = json_module.loads(Path(json_path).read_text())
    assert payload["anomaly_count"] == len(report.anomalies)
    assert payload["incident_count"] == len(report.incidents)
    assert payload["markdown"] == render_postmortem(report)
    md_path = write_incident_report(report, str(tmp_path / "incident.md"))
    assert Path(md_path).read_text() == render_postmortem(report)
