"""Tests for the Mixtral-style MoE MLP block (router + top-k SwiGLU experts)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.functional import linear_forward, swiglu_forward
from repro.numerics.moe import (
    MoEMLPGradients,
    MoEMLPParams,
    moe_mlp_backward,
    moe_mlp_forward,
)

RNG = np.random.default_rng(0)


def make_params(hidden=8, ffn=12, experts=4, k=2, seed=0):
    return MoEMLPParams.init(
        np.random.default_rng(seed),
        hidden_size=hidden,
        ffn_size=ffn,
        num_experts=experts,
        experts_per_token=k,
    )


def dense_swiglu(x, w_gate, w_up, w_down):
    gate, _ = linear_forward(x, w_gate)
    up, _ = linear_forward(x, w_up)
    activated, _ = swiglu_forward(gate, up)
    return activated @ w_down


class TestForward:
    def test_output_shape(self):
        params = make_params()
        x = RNG.standard_normal((6, 8))
        out, cache = moe_mlp_forward(params, x)
        assert out.shape == x.shape
        assert cache.selected.shape == (6, 2)

    def test_single_expert_equals_dense_mlp(self):
        """With one expert and k=1 the block is exactly a SwiGLU MLP."""
        params = make_params(experts=1, k=1, seed=3)
        x = RNG.standard_normal((5, 8))
        out, _ = moe_mlp_forward(params, x)
        dense = dense_swiglu(x, params.w_gate[0], params.w_up[0], params.w_down[0])
        np.testing.assert_allclose(out, dense, rtol=1e-12)

    def test_identical_experts_with_full_routing_equal_dense_mlp(self):
        """k = E with identical experts: combine weights sum to 1, so the routed
        output equals the dense expert output regardless of the router."""
        params = make_params(experts=3, k=3, seed=5)
        for e in range(1, 3):
            params.w_gate[e] = params.w_gate[0].copy()
            params.w_up[e] = params.w_up[0].copy()
            params.w_down[e] = params.w_down[0].copy()
        x = RNG.standard_normal((7, 8))
        out, _ = moe_mlp_forward(params, x)
        dense = dense_swiglu(x, params.w_gate[0], params.w_up[0], params.w_down[0])
        np.testing.assert_allclose(out, dense, rtol=1e-10)

    def test_routing_weights_are_softmax_over_selected(self):
        params = make_params()
        x = RNG.standard_normal((4, 8))
        _, cache = moe_mlp_forward(params, x)
        np.testing.assert_allclose(cache.weights.sum(axis=-1), 1.0, rtol=1e-12)
        assert np.all(cache.weights > 0)

    def test_only_selected_experts_receive_tokens(self):
        params = make_params(experts=4, k=1, seed=9)
        x = RNG.standard_normal((10, 8))
        _, cache = moe_mlp_forward(params, x)
        routed = sum(len(ids) for ids in cache.expert_tokens.values())
        assert routed == 10  # k=1: every token goes to exactly one expert

    def test_input_validation(self):
        params = make_params()
        with pytest.raises(ValueError):
            moe_mlp_forward(params, RNG.standard_normal((4, 5)))
        with pytest.raises(ValueError):
            MoEMLPParams.init(RNG, 8, 12, num_experts=2, experts_per_token=3)


class TestBackward:
    def _loss_fn(self, params, x, dout):
        out, _ = moe_mlp_forward(params, x)
        return float(np.sum(out * dout))

    def test_grad_x_matches_finite_differences(self):
        params = make_params(seed=11)
        x = RNG.standard_normal((4, 8))
        dout = RNG.standard_normal((4, 8))
        out, cache = moe_mlp_forward(params, x)
        grad_x, _ = moe_mlp_backward(params, dout, cache)

        eps = 1e-6
        numeric = np.zeros_like(x)
        for i in range(x.size):
            orig = x.flat[i]
            x.flat[i] = orig + eps
            plus = self._loss_fn(params, x, dout)
            x.flat[i] = orig - eps
            minus = self._loss_fn(params, x, dout)
            x.flat[i] = orig
            numeric.flat[i] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(grad_x, numeric, atol=1e-5)

    @pytest.mark.parametrize("which", ["router", "w_gate", "w_down"])
    def test_weight_grads_match_finite_differences(self, which):
        params = make_params(seed=13)
        x = RNG.standard_normal((5, 8))
        dout = RNG.standard_normal((5, 8))
        _, cache = moe_mlp_forward(params, x)
        _, grads = moe_mlp_backward(params, dout, cache)

        target = params.router if which == "router" else getattr(params, which)[1]
        analytic = grads.router if which == "router" else getattr(grads, which)[1]
        eps = 1e-6
        stride = max(1, target.size // 30)
        for i in range(0, target.size, stride):
            orig = target.flat[i]
            target.flat[i] = orig + eps
            plus = self._loss_fn(params, x, dout)
            target.flat[i] = orig - eps
            minus = self._loss_fn(params, x, dout)
            target.flat[i] = orig
            numeric = (plus - minus) / (2 * eps)
            assert analytic.flat[i] == pytest.approx(numeric, abs=2e-5), (which, i)

    def test_unselected_experts_get_zero_gradient(self):
        params = make_params(experts=4, k=1, seed=17)
        x = RNG.standard_normal((3, 8))
        dout = RNG.standard_normal((3, 8))
        _, cache = moe_mlp_forward(params, x)
        _, grads = moe_mlp_backward(params, dout, cache)
        for expert in range(4):
            if expert not in cache.expert_tokens:
                assert np.all(grads.w_gate[expert] == 0)
                assert np.all(grads.w_down[expert] == 0)

    def test_zeros_like_structure(self):
        params = make_params()
        grads = MoEMLPGradients.zeros_like(params)
        assert len(grads.w_gate) == params.num_experts
        assert grads.router.shape == params.router.shape

    @settings(max_examples=10, deadline=None)
    @given(
        tokens=st.integers(min_value=1, max_value=8),
        experts=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_property_backward_runs_and_shapes_match(self, tokens, experts, seed):
        k = min(2, experts)
        params = make_params(experts=experts, k=k, seed=seed)
        rng = np.random.default_rng(seed + 1)
        x = rng.standard_normal((tokens, 8))
        dout = rng.standard_normal((tokens, 8))
        out, cache = moe_mlp_forward(params, x)
        grad_x, grads = moe_mlp_backward(params, dout, cache)
        assert out.shape == x.shape
        assert grad_x.shape == x.shape
        assert grads.router.shape == params.router.shape
