"""Tests for the serving engines (repro.serving.engine).

Covers the acceptance invariants of the serving subsystem: deterministic
replay, the token-accounting conservation law
(``tokens_admitted == tokens_prefilled + tokens_preempted_requeued``), and
the headline comparison — disaggregated prefill/decode beats the colocated
batcher on p99 TTFT under the bursty long-prompt scenario.
"""

import pytest

from repro.model.config import get_model_config
from repro.serving.batcher import BatcherConfig
from repro.serving.engine import DisaggregatedEngine, ServingConfig, ServingEngine
from repro.serving.metrics import SLO
from repro.serving.scenarios import get_scenario, run_scenario
from repro.serving.workload import poisson_trace, replay_trace

LLAMA_13B = get_model_config("llama-13b")


def small_config(**overrides):
    defaults = dict(
        num_gpus=1,
        batcher=BatcherConfig(max_batch_tokens=4096, prefill_chunk_tokens=2048),
    )
    defaults.update(overrides)
    return ServingConfig(**defaults)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(num_gpus=0)
        with pytest.raises(ValueError):
            ServingConfig(memory_utilization=0.0)
        with pytest.raises(ValueError):
            ServingConfig(tpot_cap=-1.0)

    def test_model_must_fit(self):
        with pytest.raises(ValueError, match="does not fit"):
            ServingEngine(get_model_config("llama-70b"), ServingConfig(num_gpus=1))

    def test_disaggregation_needs_two_gpus(self):
        with pytest.raises(ValueError):
            DisaggregatedEngine(LLAMA_13B, ServingConfig(num_gpus=1))


class TestColocatedEngine:
    def test_simple_trace_completes(self):
        trace = replay_trace([(0.0, 1000, 8), (0.1, 2000, 16), (0.2, 500, 4)])
        result = ServingEngine(LLAMA_13B, small_config()).run(trace, SLO())
        assert result.mode == "colocated"
        assert all(r.finished for r in result.records)
        for record in result.records:
            assert record.first_token_time > record.request.arrival_time
            assert record.finish_time >= record.first_token_time
        assert result.token_accounting_balanced
        assert result.iterations > 0
        assert result.timeline.spans  # one span per iteration

    def test_deterministic(self):
        trace = poisson_trace(20, 2.0, 1024, 32, seed=3)
        engine = lambda: ServingEngine(LLAMA_13B, small_config())  # noqa: E731
        first = engine().run(trace, SLO())
        second = engine().run(trace, SLO())
        assert [r.finish_time for r in first.records] == [
            r.finish_time for r in second.records
        ]
        assert first.metrics.ttft_p99 == second.metrics.ttft_p99

    def test_token_accounting_under_memory_pressure(self):
        # llama-13b on one GPU leaves room for only ~50K KV tokens; twelve
        # requests of 6K-token max context oversubscribe the pool and force
        # preempt-and-requeue cycles.
        trace = replay_trace([(0.0, 4096, 2048) for _ in range(12)])
        result = ServingEngine(LLAMA_13B, small_config()).run(trace, SLO())
        assert result.preemptions > 0
        assert result.token_accounting_balanced
        assert all(r.finished for r in result.records)
        # Preempted work shows up as re-prefilled context beyond the prompts.
        assert result.tokens_prefilled > sum(r.prompt_tokens for r in trace)

    def test_tpot_cap_throttles_prefill(self):
        # With a TPOT cap, iterations stay short while decodes are running,
        # trading prefill throughput (higher TTFT for late arrivals).
        trace = replay_trace(
            [(0.0, 8192, 256)] + [(0.5, 8192, 64) for _ in range(4)]
        )
        free = ServingEngine(LLAMA_13B, small_config()).run(trace, SLO())
        capped = ServingEngine(
            LLAMA_13B, small_config(tpot_cap=0.015)
        ).run(trace, SLO())
        assert capped.metrics.tpot_p50 < free.metrics.tpot_p50
        assert capped.metrics.ttft_p99 > free.metrics.ttft_p99


class TestDisaggregatedEngine:
    def test_handoff_completes_all_requests(self):
        trace = poisson_trace(15, 2.0, 2048, 32, seed=0)
        config = small_config(num_gpus=2)
        result = DisaggregatedEngine(LLAMA_13B, config).run(trace, SLO())
        assert result.mode == "disaggregated"
        assert all(r.finished for r in result.records)
        assert result.token_accounting_balanced
        assert result.timeline.num_devices == 2
        # Both pools executed iterations.
        assert {span.device for span in result.timeline.spans} == {0, 1}

    def test_transfer_delay_is_priced(self):
        config = small_config(num_gpus=2)
        engine = DisaggregatedEngine(LLAMA_13B, config)
        short = engine._transfer_time(1024)
        long = engine._transfer_time(65536)
        assert 0 < short < long

    def test_single_output_token_finishes_at_prefill(self):
        trace = replay_trace([(0.0, 1024, 1)])
        result = DisaggregatedEngine(LLAMA_13B, small_config(num_gpus=2)).run(
            trace, SLO()
        )
        record = result.records[0]
        assert record.finished
        assert record.finish_time == record.first_token_time


class TestScenarioAcceptance:
    def test_scenario_run_is_deterministic(self):
        scenario = get_scenario("chat")
        a = run_scenario(scenario, "colocated", seed=0)
        b = run_scenario(scenario, "colocated", seed=0)
        assert a.metrics.ttft_p99 == b.metrics.ttft_p99
        assert a.metrics.output_tokens_per_second == b.metrics.output_tokens_per_second

    def test_disaggregation_beats_colocated_p99_ttft_on_bursty_long(self):
        # The headline claim of prefill/decode disaggregation: on bursts of
        # long prompts over live decode traffic, the colocated engine must
        # throttle prefill to protect decode TPOT, inflating tail TTFT; the
        # dedicated prefill pool does not.
        scenario = get_scenario("bursty-long")
        colocated = run_scenario(scenario, "colocated", seed=0)
        disaggregated = run_scenario(scenario, "disaggregated", seed=0)
        assert colocated.token_accounting_balanced
        assert disaggregated.token_accounting_balanced
        assert (
            disaggregated.metrics.ttft_p99 < colocated.metrics.ttft_p99
        ), "disaggregated prefill/decode should win tail TTFT on bursty-long"
        # The tradeoff: the smaller decode pool pays in inter-token latency.
        assert disaggregated.metrics.tpot_p50 > colocated.metrics.tpot_p50

    def test_unknown_scenario_lists_names(self):
        with pytest.raises(KeyError, match="bursty-long"):
            get_scenario("definitely-not-a-scenario")

    def test_unknown_mode_rejected(self):
        with pytest.raises(KeyError, match="colocated"):
            run_scenario(get_scenario("chat"), "sharded")
