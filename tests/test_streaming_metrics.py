"""Bounded-memory streaming metrics vs the record-based reference.

``StreamingMetrics`` is the million-request path's accumulator: engines fold
each finished request in and drop its record.  The contract this suite pins:

* **small samples are exact** — with five or fewer observations the P²
  sketches interpolate their sorted buffers with arithmetic bit-identical
  to :class:`PercentileSummary`, so the streamed ``ServingMetrics`` equals
  the record-based one field for field;
* **aggregates are always exact** — counts, throughput, goodput fraction
  and goodput RPS come from integer counters and match
  :func:`compute_metrics` to the last bit at any sample size, while the
  sketched percentiles stay within the P² sketch's documented worst-case
  rank/value window;
* **end to end** — a serving run with ``retain_records=False`` (including
  under preemption pressure) and a fleet run under crash pressure produce
  the same exact-field metrics and iteration counts as the record-retaining
  run, with no records held;
* **guard rails** — streaming traces must arrive sorted, disaggregation
  and fleet timeline collection refuse to stream, unfinished records are
  rejected.
"""

import math
from dataclasses import asdict, replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import FailureEvent, FailurePlan, FleetConfig, FleetEngine
from repro.model.config import get_model_config
from repro.serving import (
    SLO,
    BatcherConfig,
    DisaggregatedEngine,
    Request,
    RequestRecord,
    ServingConfig,
    ServingEngine,
    StreamingMetrics,
    compute_metrics,
    replay_trace,
)
from repro.serving.metrics import PercentileSummary

LLAMA_13B = get_model_config("llama-13b")

# Exact ServingMetrics fields: everything the integer counters and engine
# inputs determine.  The nine percentile fields are exact only at <= 5
# samples; beyond that they are P²-sketched.
EXACT_FIELDS = (
    "num_requests",
    "duration",
    "output_tokens_per_second",
    "requests_per_second",
    "goodput_fraction",
    "goodput_rps",
    "kv_utilization_mean",
    "kv_utilization_peak",
    "preemptions",
    "slo",
    "prefix_hit_rate",
    "prefix_hit_tokens",
    "prefix_flops_saved",
    "prefix_evictions",
)
PERCENTILE_FIELDS = tuple(
    f"{metric}_{p}" for metric in ("ttft", "tpot", "e2e") for p in ("p50", "p95", "p99")
)


def _record(request_id, arrival, first_token, finish, output_tokens=8):
    record = RequestRecord(
        Request(request_id, arrival, prompt_tokens=64, output_tokens=output_tokens)
    )
    record.first_token_time = first_token
    record.finish_time = finish
    return record


def _fold(records, slo=None):
    streaming = StreamingMetrics(slo)
    for record in records:
        streaming.observe(record)
    return streaming


class TestPercentileSummaryAccessors:
    def test_count_and_max(self):
        summary = PercentileSummary([3.0, 1.0, 2.0])
        assert summary.count == 3
        assert summary.max == 3.0

    def test_single_sample(self):
        summary = PercentileSummary([7.5])
        assert summary.count == 1
        assert summary.max == 7.5
        assert summary.at(99.0) == 7.5


class TestSmallSampleBitIdentity:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_streamed_equals_record_based(self, n):
        records = [
            _record(i, 0.1 * i, 0.3 + 0.17 * i, 1.0 + 0.29 * i * i) for i in range(n)
        ]
        slo = SLO(ttft=0.5, tpot=0.1)
        duration = max(r.finish_time for r in records)
        reference = compute_metrics(
            records,
            duration,
            slo,
            kv_utilization_mean=0.25,
            kv_utilization_peak=0.5,
            preemptions=3,
        )
        streamed = _fold(records, slo).finalize(
            duration, kv_utilization_mean=0.25, kv_utilization_peak=0.5, preemptions=3
        )
        # Not approximately: the whole dataclass, percentiles included, must
        # be bit-identical below the sketches' exact-regime threshold.
        assert asdict(streamed) == asdict(reference)


class TestStreamingAccumulator:
    def test_rejects_unfinished_record(self):
        record = RequestRecord(Request(0, 0.0, prompt_tokens=8, output_tokens=4))
        with pytest.raises(ValueError, match="has not finished"):
            StreamingMetrics().observe(record)

    def test_rejects_empty_finalize(self):
        with pytest.raises(ValueError, match="no finished requests"):
            StreamingMetrics().finalize(1.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError, match="window_seconds"):
            StreamingMetrics(window_seconds=0.0)

    def test_peak_window(self):
        streaming = StreamingMetrics(window_seconds=10.0)
        with pytest.raises(ValueError, match="no finished requests"):
            streaming.peak_window()
        for i, finish in enumerate([1.0, 12.0, 15.0, 18.0, 21.0]):
            streaming.observe(_record(i, 0.0, finish - 0.5, finish))
        start, count = streaming.peak_window()
        assert (start, count) == (10.0, 3)
        assert sum(streaming.window_counts.values()) == streaming.count == 5

    def test_window_memory_is_duration_bound(self):
        streaming = StreamingMetrics(window_seconds=60.0)
        for i in range(1000):
            finish = (i % 120) + 0.5
            streaming.observe(_record(i, 0.0, finish - 0.25, finish))
        assert streaming.count == 1000
        assert len(streaming.window_counts) == 2  # ceil(120s / 60s) buckets

    def test_exact_aggregates_beyond_sketch_regime(self):
        records = [
            _record(i, 0.05 * i, 0.2 + 0.03 * i, 0.9 + 0.07 * i, output_tokens=5 + i % 7)
            for i in range(300)
        ]
        slo = SLO(ttft=1.0, tpot=0.1)
        duration = max(r.finish_time for r in records)
        reference = compute_metrics(records, duration, slo)
        streamed = _fold(records, slo).finalize(duration)
        for field in EXACT_FIELDS:
            assert getattr(streamed, field) == getattr(reference, field), field

    @settings(max_examples=30, deadline=None)
    @given(
        latencies=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                st.floats(min_value=1e-3, max_value=5.0, allow_nan=False),
                st.floats(min_value=1e-3, max_value=60.0, allow_nan=False),
            ),
            min_size=1,
            max_size=200,
        )
    )
    def test_property_aggregates_exact_percentiles_bounded(self, latencies):
        records = [
            _record(i, arrival, arrival + ttft, arrival + ttft + tail)
            for i, (arrival, ttft, tail) in enumerate(latencies)
        ]
        slo = SLO(ttft=1.0, tpot=0.2)
        duration = max(r.finish_time for r in records)
        reference = compute_metrics(records, duration, slo)
        streamed = _fold(records, slo).finalize(duration)
        for field in EXACT_FIELDS:
            assert getattr(streamed, field) == getattr(reference, field), field
        # The sketched percentiles obey the documented P² worst-case window:
        # the estimate of quantile q over n samples lies between the exact
        # quantiles at q -+ (0.15 + 3/n), widened by (0.35 + 1/n) of the
        # observed sample range.
        n = len(records)
        rank_slack = 0.15 + 3.0 / n
        for metric, values in (
            ("ttft", [r.ttft for r in records]),
            ("tpot", [r.tpot for r in records]),
            ("e2e", [r.e2e_latency for r in records]),
        ):
            summary = PercentileSummary(values)
            value_slack = (0.35 + 1.0 / n) * (summary.max - summary._ordered[0])
            for p in (50, 95, 99):
                estimate = getattr(streamed, f"{metric}_p{p}")
                if n <= 5:
                    # The sketch buffers raw samples here: bit-identical, a
                    # stronger claim than the window (which degenerates to
                    # zero width on constant samples while interpolation can
                    # round one ulp off the repeated value).
                    assert estimate == summary.at(float(p)), f"{metric}_p{p}"
                    continue
                lo = summary.at(max(p - rank_slack * 100.0, 0.0))
                hi = summary.at(min(p + rank_slack * 100.0, 100.0))
                assert lo - value_slack <= estimate <= hi + value_slack, (
                    f"{metric}_p{p}: {estimate} outside [{lo}, {hi}] +- {value_slack}"
                )


def _serving_config(retain_records, **overrides):
    return ServingConfig(
        num_gpus=1,
        batcher=BatcherConfig(max_batch_tokens=4096, prefill_chunk_tokens=2048),
        retain_records=retain_records,
        **overrides,
    )


def _digest_exact(result):
    metrics = result.metrics
    return {
        "exact": {f: getattr(metrics, f) for f in EXACT_FIELDS},
        "iterations": result.iterations,
        "preemptions": result.preemptions,
        "tokens_admitted": result.tokens_admitted,
        "tokens_prefilled": result.tokens_prefilled,
        "tokens_preempted_requeued": result.tokens_preempted_requeued,
    }


class TestServingStreamingEndToEnd:
    @settings(max_examples=15, deadline=None)
    @given(
        triples=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
                st.integers(min_value=1, max_value=6000),
                st.integers(min_value=1, max_value=600),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_property_streaming_matches_record_based(self, triples):
        trace = replay_trace(sorted(triples))
        slo = SLO()
        retained = ServingEngine(LLAMA_13B, _serving_config(True)).run(trace, slo)
        streamed = ServingEngine(LLAMA_13B, _serving_config(False)).run(trace, slo)
        assert _digest_exact(streamed) == _digest_exact(retained)
        assert streamed.records == []
        assert not streamed.retain_records and retained.retain_records

    def test_streaming_matches_under_preemption_pressure(self):
        # Oversubscribes the 1-GPU KV pool: preempt/requeue cycles mean some
        # requests restart, and the streamed accumulator must still agree.
        trace = replay_trace([(0.0, 4096, 2048) for _ in range(12)])
        slo = SLO()
        retained = ServingEngine(LLAMA_13B, _serving_config(True)).run(trace, slo)
        streamed = ServingEngine(LLAMA_13B, _serving_config(False)).run(trace, slo)
        assert retained.preemptions > 0
        assert _digest_exact(streamed) == _digest_exact(retained)

    def test_streaming_percentiles_exact_at_small_n(self):
        trace = replay_trace([(0.0, 512, 8), (0.5, 256, 16), (1.0, 1024, 4)])
        slo = SLO()
        retained = ServingEngine(LLAMA_13B, _serving_config(True)).run(trace, slo)
        streamed = ServingEngine(LLAMA_13B, _serving_config(False)).run(trace, slo)
        assert asdict(streamed.metrics) == asdict(retained.metrics)

    def test_streaming_rejects_unsorted_trace(self):
        trace = [
            Request(0, 5.0, prompt_tokens=64, output_tokens=4),
            Request(1, 1.0, prompt_tokens=64, output_tokens=4),
        ]
        engine = ServingEngine(LLAMA_13B, _serving_config(False))
        with pytest.raises(ValueError, match="sorted by arrival_time"):
            engine.run(iter(trace), SLO())

    def test_disaggregation_refuses_streaming(self):
        with pytest.raises(ValueError, match="requires the colocated engine"):
            DisaggregatedEngine(LLAMA_13B, _serving_config(False))


class TestFleetStreamingEndToEnd:
    def _run(self, retain_records):
        trace = list(
            replay_trace(
                [(0.4 * i, 256 + 64 * (i % 5), 16 + (i % 9)) for i in range(120)]
            )
        )
        config = FleetConfig(
            gpus_per_replica=1,
            initial_replicas=2,
            max_replicas=2,
            retain_records=retain_records,
        )
        plan = FailurePlan(
            events=(FailureEvent(time=5.0, kind="crash", replica_index=0, duration=4.0),)
        )
        engine = FleetEngine(LLAMA_13B, config, failure_plan=plan)
        return engine.run(trace, SLO())

    def test_streaming_matches_under_crash_pressure(self):
        retained = self._run(True)
        streamed = self._run(False)
        assert asdict(retained.fleet) == asdict(streamed.fleet)
        assert _digest_exact(streamed) == _digest_exact(retained)
        assert streamed.records == []
        assert not streamed.retain_records and retained.retain_records

    def test_streaming_refuses_timeline_collection(self):
        config = FleetConfig(initial_replicas=1, retain_records=False)
        engine = FleetEngine(LLAMA_13B, config)
        trace = list(replay_trace([(0.0, 64, 4)]))
        with pytest.raises(ValueError, match="collect_timeline"):
            engine.run(trace, SLO(), collect_timeline=True)

    def test_streaming_rejects_unsorted_trace(self):
        config = FleetConfig(initial_replicas=1, retain_records=False)
        engine = FleetEngine(LLAMA_13B, config)
        trace = [
            Request(0, 5.0, prompt_tokens=64, output_tokens=4),
            Request(1, 1.0, prompt_tokens=64, output_tokens=4),
        ]
        with pytest.raises(ValueError, match="sorted by arrival_time"):
            engine.run(iter(trace), SLO())
