"""Tests for the discrete-event simulation engine and timeline metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.costs import PassKind
from repro.schedules import (
    Pass,
    PipelineSchedule,
    build_1f1b_schedule,
    build_gpipe_schedule,
    build_interleaved_1f1b_schedule,
    build_terapipe_schedule,
    build_zero_bubble_v_schedule,
)
from repro.sim import (
    DeadlockError,
    SimulationEngine,
    Timeline,
    TimelineSpan,
    UniformCostProvider,
)


def run(schedule, **cost_kwargs):
    return SimulationEngine(schedule, UniformCostProvider(**cost_kwargs)).run()


# ---------------------------------------------------------------------------
# Basic engine behaviour
# ---------------------------------------------------------------------------
def test_1f1b_makespan_matches_closed_form():
    """With unit costs, 1F1B finishes in (m + p - 1) * (Tf + Tb)."""
    p, m, tf, tb = 4, 8, 1.0, 2.0
    timeline = run(build_1f1b_schedule(p, m), forward=tf, backward=tb)
    assert timeline.makespan == pytest.approx((m + p - 1) * (tf + tb))
    # Every device performs m forwards and m backwards.
    for device in range(p):
        assert timeline.busy_time(device) == pytest.approx(m * (tf + tb))


def test_gpipe_same_bubble_as_1f1b_with_uniform_costs():
    p, m = 4, 6
    gpipe = run(build_gpipe_schedule(p, m))
    f1b1 = run(build_1f1b_schedule(p, m))
    assert gpipe.makespan == pytest.approx(f1b1.makespan)
    assert gpipe.bubble_fraction() == pytest.approx(f1b1.bubble_fraction())


def test_bubble_fraction_definition():
    p, m, tf, tb = 4, 4, 1.0, 2.0
    timeline = run(build_1f1b_schedule(p, m), forward=tf, backward=tb)
    expected = (p - 1) / (m + p - 1)
    assert timeline.bubble_fraction() == pytest.approx(expected)


def test_more_microbatches_shrink_bubble_fraction():
    p = 4
    fractions = [run(build_1f1b_schedule(p, m)).bubble_fraction() for m in (2, 4, 8, 16)]
    assert all(b > a for a, b in zip(fractions[1:], fractions[:-1]))


def test_interleaving_reduces_bubble():
    p, m, v = 4, 8, 2
    plain = run(build_1f1b_schedule(p, m), forward=1.0, backward=2.0)
    # Each interleaved chunk holds 1/v of the layers, so its passes cost 1/v.
    interleaved = run(
        build_interleaved_1f1b_schedule(p, m, v), forward=1.0 / v, backward=2.0 / v
    )
    assert interleaved.bubble_fraction() < plain.bubble_fraction()
    assert interleaved.busy_time() == pytest.approx(plain.busy_time())


def test_terapipe_slicing_reduces_bubble_vs_gpipe():
    p, m, n = 4, 2, 8
    gpipe = run(build_gpipe_schedule(p, m))
    terapipe = run(build_terapipe_schedule(p, m, n))
    assert terapipe.bubble_fraction() < gpipe.bubble_fraction()


def test_zero_bubble_beats_1f1b_when_balanced():
    """With Tf = Tbi = Tbw the greedy ZB-V schedule approaches zero bubble."""
    p, m = 4, 8
    plain = run(build_1f1b_schedule(p, m), forward=1.0, backward=2.0)
    zbv_schedule = build_zero_bubble_v_schedule(p, m)
    zbv = run(zbv_schedule, forward=1.0, backward=2.0, backward_input=1.0, backward_weight=1.0)
    assert zbv.bubble_fraction() < plain.bubble_fraction()
    assert zbv.bubble_fraction() < 0.12


def test_zero_bubble_degrades_when_attention_dominates():
    """Tb >> Tf (long-context attention) brings imbalance bubbles back to ZB-V."""
    p, m = 4, 6
    balanced_sched = build_zero_bubble_v_schedule(p, m)
    balanced = run(
        balanced_sched, forward=1.0, backward_input=1.0, backward_weight=1.0
    )
    skewed_sched = build_zero_bubble_v_schedule(
        p, m, duration_fn=lambda w: {"F": 1.0, "Bi": 2.5, "Bw": 0.2}[w.kind.value]
    )
    skewed = run(skewed_sched, forward=1.0, backward_input=2.5, backward_weight=0.2)
    assert skewed.bubble_fraction() > balanced.bubble_fraction()


def test_comm_delay_increases_makespan():
    p, m = 4, 4
    base = run(build_1f1b_schedule(p, m))
    delayed = run(build_1f1b_schedule(p, m), comm=0.5)
    assert delayed.makespan > base.makespan
    assert delayed.busy_time() == pytest.approx(base.busy_time())


def test_deadlock_detection():
    """A schedule whose device order hides a dependency behind later work deadlocks."""
    sched = build_1f1b_schedule(2, 2)
    # Device 1 tries to run its backward for microbatch 1 before the forward
    # of microbatch 1 has been scheduled anywhere downstream of it.
    order = sched.device_orders[0]
    # Move the backward of microbatch 0 (depends on device 1) to the front.
    backward = next(p for p in order if p.kind is PassKind.BACKWARD)
    order.remove(backward)
    order.insert(0, backward)
    with pytest.raises(DeadlockError):
        SimulationEngine(sched, UniformCostProvider()).run()


def test_every_pass_executed_exactly_once():
    sched = build_interleaved_1f1b_schedule(4, 8, 2)
    timeline = run(sched)
    assert len(timeline.spans) == sched.total_passes()
    keys = {(s.work.kind, s.work.work_key) for s in timeline.spans}
    assert len(keys) == sched.total_passes()


def test_dependencies_respected_in_time():
    sched = build_1f1b_schedule(3, 5)
    timeline = run(sched, comm=0.25)
    finish = timeline.finish_times()
    start = {(s.work.kind, s.work.work_key): s.start for s in timeline.spans}
    for span in timeline.spans:
        for dep in sched.dependencies(span.work):
            key = (dep.kind, dep.work_key)
            assert finish[key] <= start[(span.work.kind, span.work.work_key)] + 1e-12


# ---------------------------------------------------------------------------
# Timeline class behaviour
# ---------------------------------------------------------------------------
def test_timeline_span_validation():
    with pytest.raises(ValueError):
        TimelineSpan(0, Pass(PassKind.FORWARD, 0, 0, 0), 1.0, 0.5)


def test_timeline_device_range_checked():
    t = Timeline(num_devices=2)
    with pytest.raises(ValueError):
        t.add(TimelineSpan(5, Pass(PassKind.FORWARD, 0, 0, 5), 0.0, 1.0))


def test_empty_timeline_metrics():
    t = Timeline(num_devices=2)
    assert t.makespan == 0.0
    assert t.bubble_fraction() == 0.0
    assert t.device_utilizations() == [0.0, 0.0]
    assert t.render_ascii() == "(empty timeline)"


def test_render_ascii_contains_rows_for_each_device():
    timeline = run(build_1f1b_schedule(3, 3))
    art = timeline.render_ascii(width=60)
    assert art.count("\n") == 2
    assert "F" in art and "B" in art


def test_utilization_sums_to_busy_fraction():
    timeline = run(build_1f1b_schedule(4, 8))
    utils = timeline.device_utilizations()
    assert len(utils) == 4
    assert sum(utils) / 4 == pytest.approx(1 - timeline.bubble_fraction())


# ---------------------------------------------------------------------------
# Property: all builders produce executable (deadlock-free) schedules
# ---------------------------------------------------------------------------
@given(p=st.integers(2, 5), m=st.integers(1, 8))
@settings(max_examples=20, deadline=None)
def test_all_simple_schedules_execute(p, m):
    for sched in (
        build_gpipe_schedule(p, m),
        build_1f1b_schedule(p, m),
        build_terapipe_schedule(p, m, p),
    ):
        timeline = run(sched)
        assert len(timeline.spans) == sched.total_passes()


@given(p=st.integers(2, 4), groups=st.integers(1, 3), v=st.integers(1, 3))
@settings(max_examples=15, deadline=None)
def test_interleaved_schedules_execute(p, groups, v):
    sched = build_interleaved_1f1b_schedule(p, groups * p, v)
    timeline = run(sched)
    assert len(timeline.spans) == sched.total_passes()


@given(p=st.integers(2, 4), m=st.integers(1, 5), half=st.booleans())
@settings(max_examples=10, deadline=None)
def test_zero_bubble_schedules_execute(p, m, half):
    sched = build_zero_bubble_v_schedule(p, m, half_memory=half)
    timeline = run(sched)
    assert len(timeline.spans) == sched.total_passes()
