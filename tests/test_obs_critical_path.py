"""The span decomposition must conserve measured latency float-exactly.

:func:`repro.obs.build_attributions` reconstructs each request's critical
path (queue wait, prefill chunks, decode, preemption re-queues, KV hand-off,
crash re-routes, slow-node inflation) purely from the recorded event stream.
The central invariant is *conservation*: the spans tile the request's
lifetime with shared boundary timestamps taken verbatim from the events, so
``first_token - arrival`` and ``finish - arrival`` recover the engine's own
TTFT and E2E latency **bit-exactly** — not within a tolerance.  This suite
pins that oracle across every registered serving scenario (both deployment
modes), every registered fleet scenario (crashes, slow windows, autoscaling
included), hypothesis-generated random traces and a preemption-pressure
trace, and checks the per-kind structure of the decomposition itself.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.scenarios import FLEET_SCENARIO_REGISTRY, run_fleet_scenario
from repro.model.config import get_model_config
from repro.obs import (
    EventRecorder,
    build_attributions,
    slow_windows,
    verify_conservation,
)
from repro.obs.critical_path import (
    CRASH_REQUEUE,
    DECODE,
    DECODE_QUEUE,
    KV_HANDOFF,
    PREEMPT_REQUEUE,
    PREFILL_SPAN,
    QUEUE,
    SLOW_NODE,
)
from repro.serving.batcher import BatcherConfig
from repro.serving.engine import ServingConfig, ServingEngine
from repro.serving.metrics import SLO
from repro.serving.scenarios import SCENARIO_REGISTRY, run_scenario
from repro.serving.workload import replay_trace

LLAMA_13B = get_model_config("llama-13b")


def _span_kinds(attributions):
    return {span.kind for attr in attributions.values() for span in attr.spans}


@pytest.mark.parametrize(
    "scenario_name",
    sorted(name for name in SCENARIO_REGISTRY if not name.startswith("massive-")),
)
@pytest.mark.parametrize("mode", ["colocated", "disaggregated"])
def test_serving_scenarios_conserve(scenario_name, mode):
    recorder = EventRecorder()
    result = run_scenario(
        SCENARIO_REGISTRY[scenario_name], mode, seed=0, observe=recorder
    )
    checked = verify_conservation(recorder, records=result.records)
    assert checked == sum(1 for r in result.records if r.finished)
    assert checked > 0


@pytest.mark.parametrize(
    "scenario_name",
    sorted(name for name in SCENARIO_REGISTRY if name.startswith("massive-")),
)
def test_massive_scenario_slices_conserve(scenario_name):
    # Conservation needs per-request records, so check a retained slice.
    recorder = EventRecorder()
    result = run_scenario(
        SCENARIO_REGISTRY[scenario_name],
        seed=0,
        observe=recorder,
        retain_records=True,
        max_requests=300,
    )
    checked = verify_conservation(recorder, records=result.records)
    assert checked == sum(1 for r in result.records if r.finished)
    assert checked > 0


@pytest.mark.parametrize("scenario_name", sorted(FLEET_SCENARIO_REGISTRY))
def test_fleet_scenarios_conserve(scenario_name):
    recorder = EventRecorder()
    result = run_fleet_scenario(
        FLEET_SCENARIO_REGISTRY[scenario_name], seed=0, observe=recorder
    )
    checked = verify_conservation(recorder, records=result.records)
    assert checked == sum(1 for r in result.records if r.finished)
    assert checked > 0


def test_colocated_breakdown_structure():
    recorder = EventRecorder()
    result = run_scenario(SCENARIO_REGISTRY["chat"], "colocated", seed=0, observe=recorder)
    attributions = build_attributions(recorder)
    kinds = _span_kinds(attributions)
    assert {QUEUE, PREFILL_SPAN, DECODE} <= kinds
    # No disaggregation, failures or preemptions in steady chat.
    assert KV_HANDOFF not in kinds and CRASH_REQUEUE not in kinds
    for attr in attributions.values():
        if not attr.finished:
            continue
        # Durations sum to the telescoped E2E up to float-summation noise;
        # the *exact* equality lives in the boundary chaining the
        # conservation oracle asserts.
        assert sum(attr.breakdown().values()) == pytest.approx(attr.e2e_latency)
        assert sum(attr.breakdown(until_first_token=True).values()) == pytest.approx(
            attr.ttft
        )
        assert attr.output_tokens > 0


def test_disaggregated_breakdown_has_handoff():
    recorder = EventRecorder()
    run_scenario(SCENARIO_REGISTRY["chat"], "disaggregated", seed=0, observe=recorder)
    attributions = build_attributions(recorder)
    kinds = _span_kinds(attributions)
    assert KV_HANDOFF in kinds
    assert DECODE_QUEUE in kinds


def test_preemption_pressure_attributed_and_conserved():
    # Oversubscribes the 1-GPU llama-13b KV pool so preempt/requeue cycles
    # (including re-prefill of evicted context) land inside the spans.
    recorder = EventRecorder()
    config = ServingConfig(
        num_gpus=1,
        batcher=BatcherConfig(max_batch_tokens=4096, prefill_chunk_tokens=2048),
        observe=recorder,
    )
    trace = replay_trace([(0.0, 4096, 2048) for _ in range(12)])
    result = ServingEngine(LLAMA_13B, config).run(trace, SLO())
    assert result.preemptions > 0
    attributions = build_attributions(recorder)
    verify_conservation(recorder, attributions, records=result.records)
    assert sum(a.preemptions for a in attributions.values()) == result.preemptions
    assert PREEMPT_REQUEUE in _span_kinds(attributions)


def test_unreliable_fleet_attributes_crashes_and_slow_windows():
    recorder = EventRecorder()
    result = run_fleet_scenario(
        FLEET_SCENARIO_REGISTRY["unreliable"], seed=0, observe=recorder
    )
    attributions = build_attributions(recorder)
    verify_conservation(recorder, attributions, records=result.records)
    # The scenario's failure plan: replica 0 crashes at t=20, the replica at
    # active index 1 (= replica 2) slows at t=35 and crashes at t=50, which
    # truncates its slow window.
    windows = slow_windows(recorder)
    assert windows == {2: [(35.0, 50.0)]}
    reroutes = sum(a.crash_reroutes for a in attributions.values())
    assert reroutes == result.fleet.rerouted_requests > 0
    kinds = _span_kinds(attributions)
    assert CRASH_REQUEUE in kinds
    assert SLOW_NODE in _span_kinds(attributions) or any(
        span.slow for attr in attributions.values() for span in attr.spans
    )


def test_attribution_is_pure_post_processing():
    # Building attributions twice from the same stream yields equal results
    # and never mutates the recorder.
    recorder = EventRecorder()
    run_scenario(SCENARIO_REGISTRY["chat"], "colocated", seed=0, observe=recorder)
    before = list(recorder.events)
    first = build_attributions(recorder)
    second = build_attributions(recorder)
    assert recorder.events == before
    assert first == second


class TestRandomTraces:
    """Hypothesis property: conservation holds for arbitrary small traces."""

    @settings(max_examples=25, deadline=None)
    @given(
        triples=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
                st.integers(min_value=1, max_value=6000),
                st.integers(min_value=1, max_value=600),
            ),
            min_size=1,
            max_size=12,
        ),
        priority_policy=st.booleans(),
    )
    def test_conserves_on_random_traces(self, triples, priority_policy):
        recorder = EventRecorder()
        config = ServingConfig(
            num_gpus=1,
            batcher=BatcherConfig(
                max_batch_tokens=4096,
                prefill_chunk_tokens=2048,
                policy="priority" if priority_policy else "fcfs",
            ),
            observe=recorder,
        )
        trace = replay_trace(sorted(triples))
        result = ServingEngine(LLAMA_13B, config).run(trace, SLO())
        checked = verify_conservation(recorder, records=result.records)
        assert checked == sum(1 for r in result.records if r.finished)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10))
    def test_conserves_under_failures_across_seeds(self, seed):
        # Random arrival traces through the crash/slow failure plan: the
        # re-route and slow-window bookkeeping must conserve on all of them.
        recorder = EventRecorder()
        result = run_fleet_scenario(
            FLEET_SCENARIO_REGISTRY["unreliable"], seed=seed, observe=recorder
        )
        checked = verify_conservation(recorder, records=result.records)
        assert checked == sum(1 for r in result.records if r.finished)
