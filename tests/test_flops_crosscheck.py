"""Cross-check: analytic FLOPs accounting vs numeric-engine weight shapes.

``repro.model.flops`` (the counts every cost-model second in
``repro.model.costs`` derives from) uses closed forms per token;
``repro.numerics`` instantiates the actual weight matrices.  For a model the
two layers agree on, the closed forms must equal FLOPs counted directly from
the NumPy parameter shapes — ``2 * m * k * n`` per GEMM, ``4 * h`` per
causally-attended (query, key) pair — for both the linear and the attention
components, end to end over the full forward.
"""

import pytest

from repro.hardware.gpu import HOPPER_80GB
from repro.model.config import ModelConfig
from repro.model.costs import CostModel, PassKind
from repro.model.flops import (
    FlopsBreakdown,
    layer_forward_flops,
    model_forward_flops,
    output_layer_flops,
)
from repro.numerics.model import ModelParams, NumericModelConfig

#: Two small configurations: the numeric default and a GQA-heavier variant.
CONFIGS = [
    NumericModelConfig(),
    NumericModelConfig(
        num_layers=3,
        hidden_size=24,
        num_heads=6,
        num_groups=3,
        ffn_size=48,
        vocab_size=96,
    ),
]

SEQUENCE_LENGTHS = (8, 33)


def _model_config(numeric: NumericModelConfig) -> ModelConfig:
    """The analytic twin of a numeric test model."""
    return ModelConfig(
        name="numeric-twin",
        num_layers=numeric.num_layers,
        num_attention_heads=numeric.num_heads,
        num_query_groups=numeric.num_groups,
        hidden_size=numeric.hidden_size,
        ffn_hidden_size=numeric.ffn_size,
        vocab_size=numeric.vocab_size,
    )


def _shape_level_layer_flops(params: ModelParams, seq: int) -> FlopsBreakdown:
    """FLOPs of one layer counted from the actual weight array shapes."""
    layer = params.layers[0]
    linear = 0.0
    for weight in (
        layer.wq,
        layer.wk,
        layer.wv,
        layer.wo,
        layer.w_gate,
        layer.w_up,
        layer.w_down,
    ):
        rows, cols = weight.shape
        linear += 2.0 * seq * rows * cols
    # Causal attention: query i attends to keys 1..i; each attended pair
    # costs 2h for the score dot products (all heads) and 2h for the
    # weighted value sum.
    attended_pairs = seq * (seq + 1) / 2.0
    attention = 4.0 * params.config.hidden_size * attended_pairs
    return FlopsBreakdown(linear=linear, attention=attention)


def _shape_level_model_flops(params: ModelParams, seq: int) -> FlopsBreakdown:
    per_layer = _shape_level_layer_flops(params, seq)
    total = per_layer * params.config.num_layers
    rows, cols = params.output_weight.shape
    return total + FlopsBreakdown(linear=2.0 * seq * rows * cols)


@pytest.mark.parametrize("numeric", CONFIGS, ids=["default", "gqa-wide"])
@pytest.mark.parametrize("seq", SEQUENCE_LENGTHS)
def test_layer_flops_match_weight_shapes(numeric, seq):
    params = ModelParams.init(numeric)
    analytic = layer_forward_flops(_model_config(numeric), seq)
    shaped = _shape_level_layer_flops(params, seq)
    assert analytic.linear == pytest.approx(shaped.linear, rel=1e-12)
    assert analytic.attention == pytest.approx(shaped.attention, rel=1e-12)


@pytest.mark.parametrize("numeric", CONFIGS, ids=["default", "gqa-wide"])
@pytest.mark.parametrize("seq", SEQUENCE_LENGTHS)
def test_full_model_flops_match_weight_shapes(numeric, seq):
    params = ModelParams.init(numeric)
    analytic = model_forward_flops(_model_config(numeric), seq)
    shaped = _shape_level_model_flops(params, seq)
    assert analytic.total == pytest.approx(shaped.total, rel=1e-12)
    # The output projection is exactly the 2 * s * h * V GEMM.
    out = output_layer_flops(_model_config(numeric), seq)
    rows, cols = params.output_weight.shape
    assert out.linear == pytest.approx(2.0 * seq * rows * cols, rel=1e-12)


@pytest.mark.parametrize("numeric", CONFIGS, ids=["default", "gqa-wide"])
def test_cost_model_prices_shape_level_flops_identically(numeric):
    """The time model agrees whether FLOPs come from forms or from shapes."""
    seq = 16
    params = ModelParams.init(numeric)
    cost_model = CostModel(HOPPER_80GB)
    analytic = layer_forward_flops(_model_config(numeric), seq)
    shaped = _shape_level_layer_flops(params, seq)
    for kind in (PassKind.FORWARD, PassKind.BACKWARD):
        assert cost_model.time_of(analytic, kind, tokens=seq) == pytest.approx(
            cost_model.time_of(shaped, kind, tokens=seq), rel=1e-12
        )
