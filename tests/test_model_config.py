"""Model configuration presets must reproduce Table 3 of the paper."""

import pytest

from repro.model import (
    LLAMA_13B,
    LLAMA_70B,
    LLAMA_149B,
    MIXTRAL_8X7B,
    MIXTRAL_8X22B,
    MODEL_REGISTRY,
    ModelConfig,
    get_model_config,
)

TABLE3_PARAMS = {
    "llama-13b": 13.3e9,
    "llama-70b": 69.5e9,
    "llama-149b": 148.9e9,
    "mixtral-8x7b": 47.0e9,
    "mixtral-8x22b": 141.0e9,
}


@pytest.mark.parametrize("name,expected", sorted(TABLE3_PARAMS.items()))
def test_total_params_match_table3(name, expected):
    model = get_model_config(name)
    assert model.total_params() == pytest.approx(expected, rel=0.01)


@pytest.mark.parametrize(
    "model,layers,heads,groups,hidden,ffn",
    [
        (LLAMA_13B, 40, 40, None, 5120, 13824),
        (LLAMA_70B, 80, 64, 8, 8192, 28672),
        (LLAMA_149B, 96, 96, 8, 12288, 32768),
        (MIXTRAL_8X7B, 32, 32, 8, 4096, 14336),
        (MIXTRAL_8X22B, 56, 48, 8, 6144, 16384),
    ],
)
def test_table3_architecture_fields(model, layers, heads, groups, hidden, ffn):
    assert model.num_layers == layers
    assert model.num_attention_heads == heads
    assert model.num_query_groups == groups
    assert model.hidden_size == hidden
    assert model.ffn_hidden_size == ffn
    assert model.vocab_size == 128_000


def test_kv_channels_gqa_vs_mha():
    assert LLAMA_13B.kv_channels == LLAMA_13B.hidden_size  # MHA
    assert LLAMA_70B.kv_channels == 8 * LLAMA_70B.head_dim  # GQA


def test_moe_flags():
    assert MIXTRAL_8X7B.is_moe and MIXTRAL_8X7B.active_experts == 2
    assert not LLAMA_70B.is_moe and LLAMA_70B.active_experts == 1


def test_active_params_smaller_than_total_for_moe():
    assert MIXTRAL_8X7B.active_params_per_layer() < MIXTRAL_8X7B.params_per_layer()
    assert LLAMA_13B.active_params_per_layer() == LLAMA_13B.params_per_layer()


def test_registry_lookup_and_error():
    assert get_model_config("llama-70b") is LLAMA_70B
    assert set(TABLE3_PARAMS) <= set(MODEL_REGISTRY)
    with pytest.raises(KeyError, match="unknown model"):
        get_model_config("gpt-17")


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        ModelConfig(name="bad", num_layers=0, num_attention_heads=4, hidden_size=64, ffn_hidden_size=128)
    with pytest.raises(ValueError):
        ModelConfig(name="bad", num_layers=2, num_attention_heads=3, hidden_size=64, ffn_hidden_size=128)
    with pytest.raises(ValueError):
        ModelConfig(
            name="bad",
            num_layers=2,
            num_attention_heads=4,
            hidden_size=64,
            ffn_hidden_size=128,
            num_query_groups=3,
        )
    with pytest.raises(ValueError):
        ModelConfig(
            name="bad",
            num_layers=2,
            num_attention_heads=4,
            hidden_size=64,
            ffn_hidden_size=128,
            num_experts=4,
            experts_per_token=5,
        )


def test_scaled_down_preserves_structure():
    tiny = LLAMA_70B.scaled_down(64)
    assert tiny.num_layers >= 2
    assert tiny.hidden_size % tiny.num_attention_heads == 0
    assert tiny.is_moe == LLAMA_70B.is_moe


def test_with_layers():
    shallow = LLAMA_13B.with_layers(8)
    assert shallow.num_layers == 8
    assert shallow.hidden_size == LLAMA_13B.hidden_size
