"""Tests for the fleet autoscaling policies (repro.fleet.autoscaler)."""

import pytest

from repro.constants import UnknownNameError
from repro.fleet.autoscaler import (
    ArrivalRateAutoscaler,
    AutoscalerConfig,
    FixedAutoscaler,
    FleetView,
    QueueDepthAutoscaler,
    available_autoscalers,
    make_autoscaler,
)
from repro.fleet.scenarios import get_fleet_scenario, run_fleet_scenario


def _view(now=0.0, active=2, provisioning=0, queue=0, running=0, rate=0.0):
    return FleetView(
        now=now,
        active_replicas=active,
        provisioning_replicas=provisioning,
        queue_depth=queue,
        running_requests=running,
        arrival_rate=rate,
    )


class TestConfig:
    def test_registry(self):
        assert available_autoscalers() == ["arrival-rate", "none", "queue-depth"]

    def test_unknown_policy_rejected(self):
        with pytest.raises(UnknownNameError, match="queue-depth"):
            AutoscalerConfig(policy="ml-predictor")

    def test_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(interval=0.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(scale_up_queue=1.0, scale_down_queue=2.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(step=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(replica_rps=0.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(headroom=0.9)
        with pytest.raises(ValueError):
            AutoscalerConfig(ewma_alpha=0.0)

    def test_factory_maps_policies(self):
        assert isinstance(make_autoscaler(), FixedAutoscaler)
        assert isinstance(
            make_autoscaler(AutoscalerConfig(policy="queue-depth")), QueueDepthAutoscaler
        )
        assert isinstance(
            make_autoscaler(AutoscalerConfig(policy="arrival-rate")), ArrivalRateAutoscaler
        )


class TestFixed:
    def test_holds_the_fleet(self):
        scaler = make_autoscaler(AutoscalerConfig(policy="none"))
        assert scaler.desired(_view(active=3, provisioning=1)) == 4


class TestQueueDepth:
    def _scaler(self, **overrides):
        defaults = dict(
            policy="queue-depth", scale_up_queue=4.0, scale_down_queue=0.5, cooldown=20.0
        )
        defaults.update(overrides)
        return make_autoscaler(AutoscalerConfig(**defaults))

    def test_scales_up_on_backlog(self):
        scaler = self._scaler(step=2)
        assert scaler.desired(_view(now=5.0, active=2, queue=10)) == 4

    def test_scales_down_when_idle(self):
        scaler = self._scaler()
        assert scaler.desired(_view(now=5.0, active=3, queue=0)) == 2

    def test_scales_down_below_the_threshold_with_a_trickle(self):
        # A near-idle queue (0.25 waiting per replica < 0.5) must still
        # drain capacity — scale-down is thresholded, not empty-queue-only.
        scaler = self._scaler()
        assert scaler.desired(_view(now=5.0, active=4, queue=1)) == 3

    def test_holds_in_the_deadband(self):
        scaler = self._scaler()
        assert scaler.desired(_view(now=5.0, active=2, queue=3)) == 2

    def test_cooldown_suppresses_flapping(self):
        scaler = self._scaler(cooldown=30.0)
        assert scaler.desired(_view(now=5.0, active=2, queue=10)) == 3
        # Still over threshold, but inside the cooldown window: hold.
        assert scaler.desired(_view(now=10.0, active=3, queue=20)) == 3
        assert scaler.desired(_view(now=40.0, active=3, queue=20)) == 4

    def test_counts_provisioning_replicas(self):
        # Capacity already on its way must damp further scale-ups.
        scaler = self._scaler()
        assert scaler.desired(_view(now=5.0, active=2, provisioning=2, queue=10)) == 4


class TestArrivalRate:
    def test_provisions_for_the_rate(self):
        scaler = make_autoscaler(
            AutoscalerConfig(policy="arrival-rate", replica_rps=2.0, headroom=1.2)
        )
        # ceil(6.0 * 1.2 / 2.0) = 4
        assert scaler.desired(_view(rate=6.0)) == 4

    def test_never_below_one(self):
        scaler = make_autoscaler(AutoscalerConfig(policy="arrival-rate"))
        assert scaler.desired(_view(rate=0.0)) == 1


class TestIntegration:
    def test_flash_crowd_scales_up_then_down(self):
        scenario = get_fleet_scenario("flash-crowd")
        result = run_fleet_scenario(scenario, seed=0)
        assert result.fleet.scale_up_events > 0
        assert result.fleet.replicas_peak > scenario.initial_replicas
        assert result.metrics.num_requests == len(scenario.make_trace(0))
        assert result.token_accounting_balanced

    def test_steady_chat_drains_excess_capacity(self):
        scenario = get_fleet_scenario("steady-chat")
        result = run_fleet_scenario(scenario, seed=0)
        assert result.fleet.scale_down_events > 0
        assert result.fleet.replicas_final < scenario.initial_replicas
        assert result.token_accounting_balanced

    def test_bounds_are_respected(self):
        scenario = get_fleet_scenario("flash-crowd")
        result = run_fleet_scenario(scenario, seed=0)
        assert result.fleet.replicas_peak <= scenario.max_replicas
        assert result.fleet.replicas_final >= scenario.min_replicas
