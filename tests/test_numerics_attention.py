"""Tests for causal GQA attention: dense vs blockwise, online-softmax merge,
and the FlashAttention-style blockwise backward."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.attention import (
    attention_block_backward,
    attention_block_forward,
    attention_forward,
    attention_reference,
    blockwise_attention_forward,
    expand_kv_to_heads,
    merge_partial_attention,
    reduce_heads_to_kv,
)

RNG = np.random.default_rng(7)


def make_qkv(tq=6, tk=10, heads=4, groups=2, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    q = rng.standard_normal((tq, heads, dim))
    k = rng.standard_normal((tk, groups, dim))
    v = rng.standard_normal((tk, groups, dim))
    return q, k, v


class TestExpandReduce:
    def test_expand_repeats_groups(self):
        kv = RNG.standard_normal((3, 2, 4))
        expanded = expand_kv_to_heads(kv, 6)
        assert expanded.shape == (3, 6, 4)
        np.testing.assert_allclose(expanded[:, 0], kv[:, 0])
        np.testing.assert_allclose(expanded[:, 2], kv[:, 0])
        np.testing.assert_allclose(expanded[:, 3], kv[:, 1])

    def test_reduce_is_adjoint_of_expand(self):
        """<expand(kv), g> == <kv, reduce(g)> — required for correct gradients."""
        kv = RNG.standard_normal((3, 2, 4))
        g = RNG.standard_normal((3, 6, 4))
        lhs = float(np.sum(expand_kv_to_heads(kv, 6) * g))
        rhs = float(np.sum(kv * reduce_heads_to_kv(g, 2)))
        assert lhs == pytest.approx(rhs)

    def test_expand_validation(self):
        with pytest.raises(ValueError):
            expand_kv_to_heads(RNG.standard_normal((3, 2, 4)), 5)


class TestForward:
    def test_causal_mask_blocks_future(self):
        """Output of token i must not depend on keys at positions > i."""
        q, k, v = make_qkv(tq=5, tk=5)
        base = attention_reference(q, k, v, q_offset=0, k_offset=0)
        k2, v2 = k.copy(), v.copy()
        k2[4] += 100.0
        v2[4] += 100.0
        perturbed = attention_reference(q, k2, v2, q_offset=0, k_offset=0)
        np.testing.assert_allclose(base[:4], perturbed[:4], rtol=1e-10)
        assert not np.allclose(base[4], perturbed[4])

    def test_block_forward_matches_reference(self):
        q, k, v = make_qkv()
        out = attention_block_forward(q, k, v, q_offset=4, k_offset=0)
        ref = attention_reference(q, k, v, q_offset=4, k_offset=0)
        np.testing.assert_allclose(out.out, ref, rtol=1e-10)

    def test_gqa_equals_mha_with_repeated_kv(self):
        q, k, v = make_qkv(heads=4, groups=2)
        gqa = attention_reference(q, k, v, q_offset=6)
        mha = attention_reference(
            q, expand_kv_to_heads(k, 4), expand_kv_to_heads(v, 4), q_offset=6
        )
        np.testing.assert_allclose(gqa, mha, rtol=1e-12)

    def test_fully_masked_rows_return_zero(self):
        """A KV block entirely in the future contributes nothing."""
        q, k, v = make_qkv(tq=3, tk=4)
        out = attention_block_forward(q, k, v, q_offset=0, k_offset=100)
        np.testing.assert_allclose(out.out, 0.0)
        assert np.all(np.isneginf(out.lse))

    def test_shape_validation(self):
        q, k, v = make_qkv()
        with pytest.raises(ValueError):
            attention_reference(q[:, :3], k, v)  # 3 heads not a multiple of 2 groups
        with pytest.raises(ValueError):
            attention_reference(q[:, :, :4], k, v)


class TestOnlineSoftmaxMerge:
    def test_merge_two_halves_equals_dense(self):
        q, k, v = make_qkv(tq=4, tk=12, seed=3)
        q_offset = 8
        a = attention_block_forward(q, k[:6], v[:6], q_offset, 0)
        b = attention_block_forward(q, k[6:], v[6:], q_offset, 6)
        merged = merge_partial_attention(a, b)
        ref = attention_block_forward(q, k, v, q_offset, 0)
        np.testing.assert_allclose(merged.out, ref.out, rtol=1e-10)
        np.testing.assert_allclose(merged.lse, ref.lse, rtol=1e-10)

    def test_merge_is_commutative(self):
        q, k, v = make_qkv(tq=4, tk=8, seed=5)
        a = attention_block_forward(q, k[:4], v[:4], 4, 0)
        b = attention_block_forward(q, k[4:], v[4:], 4, 4)
        ab = merge_partial_attention(a, b)
        ba = merge_partial_attention(b, a)
        np.testing.assert_allclose(ab.out, ba.out, rtol=1e-12)

    def test_merge_with_fully_masked_partial_is_identity(self):
        q, k, v = make_qkv(tq=3, tk=4, seed=9)
        real = attention_block_forward(q, k, v, 0, 0)
        empty = attention_block_forward(q, k, v, 0, 50)  # all future -> masked
        merged = merge_partial_attention(real, empty)
        np.testing.assert_allclose(merged.out, real.out, rtol=1e-12)

    def test_merge_shape_mismatch(self):
        q, k, v = make_qkv()
        a = attention_block_forward(q, k, v, 0, 0)
        b = attention_block_forward(q[:2], k, v, 0, 0)
        with pytest.raises(ValueError):
            merge_partial_attention(a, b)

    @settings(max_examples=20, deadline=None)
    @given(
        split=st.integers(min_value=1, max_value=11),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_any_split_matches_dense(self, split, seed):
        q, k, v = make_qkv(tq=5, tk=12, seed=seed)
        q_offset = 7
        a = attention_block_forward(q, k[:split], v[:split], q_offset, 0)
        b = attention_block_forward(q, k[split:], v[split:], q_offset, split)
        merged = merge_partial_attention(a, b)
        ref = attention_block_forward(q, k, v, q_offset, 0)
        np.testing.assert_allclose(merged.out, ref.out, rtol=1e-9, atol=1e-12)


class TestBlockwiseForward:
    def test_chunked_cache_matches_dense(self):
        q, k, v = make_qkv(tq=4, tk=16, seed=11)
        q_offset = 12
        blocks = [(k[i : i + 4], v[i : i + 4]) for i in range(0, 16, 4)]
        blockwise = blockwise_attention_forward(q, blocks, q_offset)
        dense = attention_block_forward(q, k, v, q_offset, 0)
        np.testing.assert_allclose(blockwise.out, dense.out, rtol=1e-10)

    def test_uneven_chunks(self):
        q, k, v = make_qkv(tq=3, tk=10, seed=13)
        blocks = [(k[:3], v[:3]), (k[3:4], v[3:4]), (k[4:], v[4:])]
        blockwise = blockwise_attention_forward(q, blocks, 7)
        dense = attention_block_forward(q, k, v, 7, 0)
        np.testing.assert_allclose(blockwise.out, dense.out, rtol=1e-10)

    def test_explicit_offsets(self):
        q, k, v = make_qkv(tq=3, tk=8, seed=17)
        blocks = [(k[:4], v[:4]), (k[4:], v[4:])]
        blockwise = blockwise_attention_forward(q, blocks, 5, block_offsets=[0, 4])
        dense = attention_block_forward(q, k, v, 5, 0)
        np.testing.assert_allclose(blockwise.out, dense.out, rtol=1e-10)

    def test_empty_blocks_rejected(self):
        q, _, _ = make_qkv()
        with pytest.raises(ValueError):
            blockwise_attention_forward(q, [], 0)

    def test_mismatched_offsets_rejected(self):
        q, k, v = make_qkv()
        with pytest.raises(ValueError):
            blockwise_attention_forward(q, [(k, v)], 0, block_offsets=[0, 4])


class TestBackward:
    def _numerical_attention_grad(self, q, k, v, dout, q_offset, wrt):
        eps = 1e-6
        target = {"q": q, "k": k, "v": v}[wrt]
        grad = np.zeros_like(target)
        flat = target.reshape(-1)
        gflat = grad.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            plus = float(np.sum(attention_reference(q, k, v, q_offset, 0) * dout))
            flat[i] = orig - eps
            minus = float(np.sum(attention_reference(q, k, v, q_offset, 0) * dout))
            flat[i] = orig
            gflat[i] = (plus - minus) / (2 * eps)
        return grad

    def test_single_block_backward_matches_finite_differences(self):
        q, k, v = make_qkv(tq=3, tk=5, heads=2, groups=1, dim=4, seed=21)
        q_offset = 2
        dout = np.random.default_rng(1).standard_normal(q.shape)
        fwd = attention_block_forward(q, k, v, q_offset, 0)
        dq, dk, dv = attention_block_backward(
            dout, q, k, v, fwd.out, fwd.lse, q_offset, 0
        )
        np.testing.assert_allclose(
            dq, self._numerical_attention_grad(q, k, v, dout, q_offset, "q"), atol=1e-5
        )
        np.testing.assert_allclose(
            dk, self._numerical_attention_grad(q, k, v, dout, q_offset, "k"), atol=1e-5
        )
        np.testing.assert_allclose(
            dv, self._numerical_attention_grad(q, k, v, dout, q_offset, "v"), atol=1e-5
        )

    def test_blockwise_backward_sums_to_dense_backward(self):
        """Per-chunk gradients must add up to the dense-gradient ground truth."""
        q, k, v = make_qkv(tq=4, tk=12, heads=4, groups=2, seed=23)
        q_offset = 8
        dout = np.random.default_rng(3).standard_normal(q.shape)
        fwd = attention_block_forward(q, k, v, q_offset, 0)
        dq_dense, dk_dense, dv_dense = attention_block_backward(
            dout, q, k, v, fwd.out, fwd.lse, q_offset, 0
        )

        dq_sum = np.zeros_like(q)
        dk_parts, dv_parts = [], []
        for start in range(0, 12, 4):
            dq, dk, dv = attention_block_backward(
                dout,
                q,
                k[start : start + 4],
                v[start : start + 4],
                fwd.out,
                fwd.lse,
                q_offset,
                start,
            )
            dq_sum += dq
            dk_parts.append(dk)
            dv_parts.append(dv)
        np.testing.assert_allclose(dq_sum, dq_dense, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(np.concatenate(dk_parts), dk_dense, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(np.concatenate(dv_parts), dv_dense, rtol=1e-9, atol=1e-12)

    def test_gqa_backward_matches_finite_differences(self):
        q, k, v = make_qkv(tq=3, tk=4, heads=4, groups=2, dim=3, seed=29)
        dout = np.random.default_rng(5).standard_normal(q.shape)
        fwd = attention_block_forward(q, k, v, 1, 0)
        _, dk, dv = attention_block_backward(dout, q, k, v, fwd.out, fwd.lse, 1, 0)
        np.testing.assert_allclose(
            dk, self._numerical_attention_grad(q, k, v, dout, 1, "k"), atol=1e-5
        )
        np.testing.assert_allclose(
            dv, self._numerical_attention_grad(q, k, v, dout, 1, "v"), atol=1e-5
        )

    def test_attention_forward_alias(self):
        q, k, v = make_qkv()
        a = attention_forward(q, k, v, 4, 0)
        b = attention_block_forward(q, k, v, 4, 0)
        np.testing.assert_allclose(a.out, b.out)
