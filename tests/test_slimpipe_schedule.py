"""Tests for the SlimPipe slice-level 1F1B schedule (Section 4.1, Figures 4/5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import (
    SlimPipeScheduleConfig,
    accumulated_slice_units,
    build_slimpipe_schedule,
    warmup_units,
)
from repro.model.costs import PassKind
from repro.schedules import build_1f1b_schedule
from repro.sim.engine import SimulationEngine, UniformCostProvider


class TestScheduleConfig:
    def test_valid_config(self):
        cfg = SlimPipeScheduleConfig(4, 2, 8, 2)
        assert cfg.p == 4 and cfg.m == 2 and cfg.n == 8 and cfg.v == 2
        assert cfg.total_stages == 8
        assert cfg.units_per_device == 2 * 8 * 2

    def test_slices_must_be_multiple_of_pipeline(self):
        with pytest.raises(ValueError, match="multiple"):
            SlimPipeScheduleConfig(4, 2, 6)

    @pytest.mark.parametrize("field", ["num_devices", "num_microbatches", "num_slices", "num_stages_per_device"])
    def test_positive_fields(self, field):
        kwargs = dict(num_devices=2, num_microbatches=2, num_slices=2, num_stages_per_device=1)
        kwargs[field] = 0
        with pytest.raises(ValueError):
            SlimPipeScheduleConfig(**kwargs)

    def test_warmup_units_decrease_by_two_per_rank(self):
        cfg = SlimPipeScheduleConfig(4, 4, 8)
        counts = [warmup_units(cfg, r) for r in range(4)]
        assert counts == [14, 12, 10, 8]

    def test_warmup_units_clamped_to_total(self):
        cfg = SlimPipeScheduleConfig(4, 1, 4)
        # n*v + 2(p-1) = 10 > total units 4
        assert warmup_units(cfg, 0) == 4

    def test_warmup_units_rank_out_of_range(self):
        cfg = SlimPipeScheduleConfig(2, 2, 2)
        with pytest.raises(ValueError):
            warmup_units(cfg, 2)

    def test_accumulated_units_match_eq1(self):
        """Peak live slice-stage units = n*v + 2(p-1), i.e. Eq. 1 in unit form."""
        for p, n, v in [(4, 8, 1), (4, 8, 2), (8, 16, 1), (2, 4, 3)]:
            cfg = SlimPipeScheduleConfig(p, 4, n, v)
            assert accumulated_slice_units(cfg) == n * v + 2 * (p - 1)


class TestScheduleStructure:
    def test_validates(self):
        schedule = build_slimpipe_schedule(4, 3, 8)
        schedule.validate()  # does not raise
        assert schedule.num_slices == 8
        assert schedule.num_stages == 4

    def test_interleaved_shape(self):
        schedule = build_slimpipe_schedule(4, 2, 8, num_stages_per_device=2)
        assert schedule.num_stages == 8
        assert schedule.stages_per_device == 2
        stages_on_dev0 = {p.stage for p in schedule.passes_on_device(0)}
        assert stages_on_dev0 == {0, 4}

    def test_every_slice_forward_and_backward_present(self):
        p, m, n = 4, 2, 8
        schedule = build_slimpipe_schedule(p, m, n)
        fwd = {(x.microbatch, x.stage, x.slice_index) for x in schedule.all_passes() if x.is_forward}
        bwd = {(x.microbatch, x.stage, x.slice_index) for x in schedule.all_passes() if x.is_backward}
        expected = {(mb, s, sl) for mb in range(m) for s in range(p) for sl in range(n)}
        assert fwd == expected
        assert bwd == expected

    def test_backward_is_lifo_within_microbatch(self):
        """On every device, backward slice order within a microbatch is reversed."""
        schedule = build_slimpipe_schedule(4, 2, 8)
        for device in range(4):
            seen = {}
            for x in schedule.passes_on_device(device):
                if x.is_backward:
                    seen.setdefault(x.microbatch, []).append(x.slice_index)
            for mb, order in seen.items():
                assert order == sorted(order, reverse=True), (device, mb, order)

    def test_forward_is_fifo_within_microbatch(self):
        schedule = build_slimpipe_schedule(4, 2, 8)
        for device in range(4):
            for stage in {p.stage for p in schedule.passes_on_device(device)}:
                for mb in range(2):
                    order = [
                        x.slice_index
                        for x in schedule.passes_on_device(device)
                        if x.is_forward and x.microbatch == mb and x.stage == stage
                    ]
                    assert order == sorted(order)

    def test_peak_inflight_matches_warmup(self):
        for p, m, n, v in [(4, 3, 8, 1), (4, 2, 8, 2), (8, 4, 16, 1), (2, 2, 2, 3)]:
            schedule = build_slimpipe_schedule(p, m, n, v)
            cfg = SlimPipeScheduleConfig(p, m, n, v)
            assert schedule.max_inflight_activations() == [
                warmup_units(cfg, r) for r in range(p)
            ]

    def test_warmup_forward_counts_metadata(self):
        schedule = build_slimpipe_schedule(4, 4, 8)
        assert schedule.metadata["warmup_units"] == schedule.warmup_forward_counts()

    def test_activation_units_far_below_classic_1f1b(self):
        """Classic 1F1B accumulates p full microbatches; SlimPipe ~1 + 2(p-1)/n."""
        p, m, n = 8, 8, 32
        slim = build_slimpipe_schedule(p, m, n)
        classic = build_1f1b_schedule(p, m)
        # Normalise to full-microbatch units: one slice unit = 1/n microbatch.
        slim_peak_mb = max(slim.max_inflight_activations()) / n
        classic_peak_mb = max(classic.max_inflight_activations())
        assert classic_peak_mb == p
        assert slim_peak_mb == pytest.approx(1 + 2 * (p - 1) / n)
        assert slim_peak_mb < classic_peak_mb / 4


class TestScheduleExecution:
    def test_engine_executes_without_deadlock(self):
        schedule = build_slimpipe_schedule(4, 3, 8)
        timeline = SimulationEngine(schedule, UniformCostProvider()).run()
        assert len(timeline.spans) == schedule.total_passes()

    def test_bubble_fraction_decreases_with_more_slices(self):
        p, m = 4, 2
        fractions = []
        for n in (p, 2 * p, 4 * p, 8 * p):
            schedule = build_slimpipe_schedule(p, m, n)
            tl = SimulationEngine(schedule, UniformCostProvider()).run()
            fractions.append(tl.bubble_fraction())
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[-1] < 0.1

    def test_bubble_smaller_than_default_1f1b(self):
        p, m, n = 4, 2, 16
        slim = build_slimpipe_schedule(p, m, n)
        base = build_1f1b_schedule(p, m)
        slim_tl = SimulationEngine(slim, UniformCostProvider()).run()
        base_tl = SimulationEngine(base, UniformCostProvider()).run()
        assert slim_tl.bubble_fraction() < base_tl.bubble_fraction()

    def test_interleaving_further_reduces_warmup_bubble(self):
        p, m, n = 4, 2, 8
        plain = build_slimpipe_schedule(p, m, n, 1)
        inter = build_slimpipe_schedule(p, m, n, 2)
        # Same per-unit costs: interleaving splits each unit into v smaller
        # stage-passes, so compare with durations scaled accordingly.
        plain_tl = SimulationEngine(plain, UniformCostProvider(1.0, 2.0)).run()
        inter_tl = SimulationEngine(inter, UniformCostProvider(0.5, 1.0)).run()
        assert inter_tl.bubble_fraction() <= plain_tl.bubble_fraction() + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(
        p=st.integers(min_value=1, max_value=6),
        m=st.integers(min_value=1, max_value=4),
        slices_per_device=st.integers(min_value=1, max_value=4),
        v=st.integers(min_value=1, max_value=3),
    )
    def test_property_always_executable(self, p, m, slices_per_device, v):
        """Any (p, m, n, v) with n a multiple of p builds and executes."""
        n = p * slices_per_device
        schedule = build_slimpipe_schedule(p, m, n, v)
        timeline = SimulationEngine(schedule, UniformCostProvider(comm=0.05)).run()
        assert len(timeline.spans) == 2 * p * m * n * v
        assert timeline.bubble_fraction() < 1.0

    @settings(max_examples=15, deadline=None)
    @given(
        p=st.integers(min_value=2, max_value=6),
        m=st.integers(min_value=2, max_value=4),
        slices_per_device=st.integers(min_value=2, max_value=4),
    )
    def test_property_peak_units_match_formula(self, p, m, slices_per_device):
        n = p * slices_per_device
        schedule = build_slimpipe_schedule(p, m, n)
        expected = [min(m * n, n + 2 * (p - 1 - r)) for r in range(p)]
        assert schedule.max_inflight_activations() == expected
