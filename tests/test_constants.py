"""Tests for unit helpers in repro.constants."""

import pytest

from repro.constants import (
    GIB,
    KILO_TOKENS,
    DType,
    dtype_bytes,
    from_gib,
    to_gib,
    tokens_from_k,
)


def test_gib_roundtrip():
    assert to_gib(from_gib(3.5)) == pytest.approx(3.5)
    assert from_gib(1) == GIB


def test_dtype_bytes():
    assert dtype_bytes(DType.BF16) == 2
    assert dtype_bytes(DType.FP16) == 2
    assert dtype_bytes(DType.FP32) == 4
    assert DType.FP32.bytes == 4


def test_tokens_from_k_matches_paper_convention():
    # The paper's 1M context example is 1048576 tokens.
    assert tokens_from_k(1024) == 1_048_576
    assert tokens_from_k(64) == 64 * KILO_TOKENS
    assert tokens_from_k(256) == 262_144


def test_tokens_from_k_fractional():
    assert tokens_from_k(0.5) == 512
