"""Tests for parallel configuration, workloads and rank mapping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import tokens_from_k
from repro.hardware import hopper_cluster
from repro.model import LLAMA_13B, LLAMA_70B, MIXTRAL_8X7B
from repro.parallel import ParallelConfig, RankCoordinates, RankMapper, WorkloadConfig


def test_world_size_and_aliases():
    cfg = ParallelConfig(
        tensor_parallel_size=8,
        context_parallel_size=1,
        data_parallel_size=2,
        pipeline_parallel_size=4,
    )
    assert cfg.world_size == 64
    assert (cfg.t, cfg.c, cfg.d, cfg.p, cfg.v) == (8, 1, 2, 4, 1)
    assert cfg.ranks_per_pipeline_stage == 16


def test_invalid_sizes_rejected():
    with pytest.raises(ValueError):
        ParallelConfig(tensor_parallel_size=0)
    with pytest.raises(ValueError):
        ParallelConfig(pipeline_parallel_size=4, num_slices=3)
    with pytest.raises(ValueError):
        ParallelConfig(pipeline_parallel_size=4, num_slices=6)
    with pytest.raises(ValueError):
        ParallelConfig(data_parallel_size=1, expert_parallel_size=4)


def test_num_slices_validation_and_with_slices():
    cfg = ParallelConfig(pipeline_parallel_size=4)
    sliced = cfg.with_slices(16)
    assert sliced.num_slices == 16
    assert sliced.n == 16 and cfg.n is None


def test_layers_per_stage_and_model_validation():
    cfg = ParallelConfig(tensor_parallel_size=8, pipeline_parallel_size=4, virtual_pipeline_size=5)
    assert cfg.layers_per_stage(LLAMA_13B) == 2
    cfg.validate_against_model(LLAMA_13B)
    bad = ParallelConfig(pipeline_parallel_size=3)
    with pytest.raises(ValueError):
        bad.layers_per_stage(LLAMA_13B)
    too_much_tp = ParallelConfig(tensor_parallel_size=16)
    with pytest.raises(ValueError):
        too_much_tp.validate_against_model(LLAMA_13B)
    bad_ep = ParallelConfig(data_parallel_size=8, expert_parallel_size=3)
    with pytest.raises(ValueError):
        bad_ep.validate_against_model(MIXTRAL_8X7B)


def test_cluster_validation():
    cluster = hopper_cluster(64)
    cfg = ParallelConfig(tensor_parallel_size=8, data_parallel_size=2, pipeline_parallel_size=4)
    cfg.validate_against_cluster(cluster)
    wrong_size = ParallelConfig(tensor_parallel_size=8, pipeline_parallel_size=4)
    with pytest.raises(ValueError):
        wrong_size.validate_against_cluster(cluster)
    too_wide = ParallelConfig(
        tensor_parallel_size=8, context_parallel_size=2, data_parallel_size=1, pipeline_parallel_size=4
    )
    with pytest.raises(ValueError):
        too_wide.validate_against_cluster(cluster)


def test_workload_microbatches_paper_setting():
    """Section 6.4: 4M tokens per iteration; longer context -> fewer microbatches."""
    parallel = ParallelConfig(tensor_parallel_size=8, data_parallel_size=2, pipeline_parallel_size=4)
    short = WorkloadConfig(tokens_from_k(64), tokens_from_k(4 * 1024))
    longer = WorkloadConfig(tokens_from_k(512), tokens_from_k(4 * 1024))
    assert short.global_batch_sequences == 64
    assert longer.global_batch_sequences == 8
    assert short.num_microbatches(parallel) == 32
    assert longer.num_microbatches(parallel) == 4


def test_workload_validation():
    with pytest.raises(ValueError):
        WorkloadConfig(0, 1024)
    with pytest.raises(ValueError):
        WorkloadConfig(2048, 1024)
    with pytest.raises(ValueError):
        WorkloadConfig(1024, 4096, microbatch_sequences=0)
    wl = WorkloadConfig(tokens_from_k(64), tokens_from_k(256))
    bad_parallel = ParallelConfig(data_parallel_size=3)
    with pytest.raises(ValueError):
        wl.num_microbatches(bad_parallel)


def test_context_parallel_token_split():
    wl = WorkloadConfig(tokens_from_k(128), tokens_from_k(4 * 1024))
    cfg = ParallelConfig(context_parallel_size=4, data_parallel_size=8, tensor_parallel_size=1)
    assert wl.tokens_per_device_sequence(cfg) == tokens_from_k(32)
    odd = ParallelConfig(context_parallel_size=3)
    with pytest.raises(ValueError):
        wl.tokens_per_device_sequence(odd)


def test_microbatch_tokens():
    wl = WorkloadConfig(tokens_from_k(64), tokens_from_k(1024), microbatch_sequences=2)
    assert wl.microbatch_tokens() == 2 * tokens_from_k(64)


# ---------------------------------------------------------------------------
# Rank mapping
# ---------------------------------------------------------------------------
@given(
    t=st.sampled_from([1, 2, 4, 8]),
    c=st.sampled_from([1, 2]),
    d=st.sampled_from([1, 2, 3]),
    p=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=30, deadline=None)
def test_rank_mapping_roundtrip(t, c, d, p):
    cfg = ParallelConfig(
        tensor_parallel_size=t,
        context_parallel_size=c,
        data_parallel_size=d,
        pipeline_parallel_size=p,
    )
    mapper = RankMapper(cfg)
    seen = set()
    for rank in range(cfg.world_size):
        coords = mapper.coordinates_of(rank)
        assert mapper.global_rank_of(coords) == rank
        seen.add((coords.tensor_rank, coords.context_rank, coords.data_rank, coords.pipeline_rank))
    assert len(seen) == cfg.world_size


def test_rank_mapping_out_of_range():
    mapper = RankMapper(ParallelConfig(tensor_parallel_size=2, pipeline_parallel_size=2))
    with pytest.raises(ValueError):
        mapper.coordinates_of(4)


def test_groups_have_expected_sizes_and_strides():
    cfg = ParallelConfig(
        tensor_parallel_size=8, data_parallel_size=2, pipeline_parallel_size=4
    )
    mapper = RankMapper(cfg)
    tp_group = mapper.tensor_group()
    pp_group = mapper.pipeline_group()
    dp_group = mapper.data_group()
    assert tp_group == list(range(8))
    assert len(pp_group) == 4 and pp_group[1] - pp_group[0] == 16
    assert len(dp_group) == 2 and dp_group[1] - dp_group[0] == 8


def test_group_node_placement_matches_paper_deployment():
    """TP groups sit inside one node; pipeline neighbours usually do not."""
    cluster = hopper_cluster(64)
    cfg = ParallelConfig(tensor_parallel_size=8, data_parallel_size=2, pipeline_parallel_size=4)
    mapper = RankMapper(cfg)
    assert mapper.group_is_intra_node(mapper.tensor_group(), cluster)
    assert not mapper.pipeline_neighbors_intra_node(cluster)
    # A 2-way-TP, 2-way-PP toy job on one node keeps the pipeline local.
    small_cluster = hopper_cluster(8)
    small_cfg = ParallelConfig(tensor_parallel_size=2, data_parallel_size=2, pipeline_parallel_size=2)
    small_mapper = RankMapper(small_cfg)
    assert small_mapper.pipeline_neighbors_intra_node(small_cluster)


def test_coordinates_dataclass():
    coords = RankCoordinates(1, 0, 1, 2)
    assert coords.tensor_rank == 1 and coords.pipeline_rank == 2
