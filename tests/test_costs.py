"""Tests for the kernel-time cost model."""

import pytest

from repro.hardware import AMPERE_80GB, HOPPER_80GB
from repro.model import LLAMA_13B, LLAMA_70B, CostModel, PassKind
from repro.model.flops import FlopsBreakdown, layer_forward_flops


@pytest.fixture()
def cost_model():
    return CostModel(HOPPER_80GB)


def test_intensity_factor_monotone(cost_model):
    factors = [cost_model.intensity_factor(t) for t in (16, 128, 1024, 16384)]
    assert all(b > a for a, b in zip(factors, factors[1:]))
    assert 0 < factors[0] < 1
    assert factors[-1] < 1
    assert cost_model.intensity_factor(0) == 1.0


def test_backward_slower_than_forward(cost_model):
    fwd = cost_model.layer_pass_time(LLAMA_13B, PassKind.FORWARD, 4096, 0)
    bwd = cost_model.layer_pass_time(LLAMA_13B, PassKind.BACKWARD, 4096, 0)
    assert bwd > fwd


def test_tf_tb_tw_ordering_attention_dominated(cost_model):
    """With a long context the attention core dominates: T_w << T_f < T_b."""
    seq = 256 * 1024
    tf, tb, tw = cost_model.tf_tb_tw(LLAMA_13B, seq, 0, num_layers=1, tensor_parallel_size=8)
    assert tw < tf < tb
    # Attention backward is about twice its forward, so tb should clearly
    # exceed tf + a GEMM-only share.
    assert tb > 1.3 * tf


def test_tf_tb_tw_gemm_dominated(cost_model):
    """For a short context the GEMMs dominate and T_b ~ T_w ~ T_f."""
    tf, tb, tw = cost_model.tf_tb_tw(LLAMA_70B, 512, 0)
    assert tb == pytest.approx(tf, rel=0.35)
    assert tw == pytest.approx(tf, rel=0.35)


def test_pass_time_scales_with_tp(cost_model):
    t1 = cost_model.layer_pass_time(LLAMA_13B, PassKind.FORWARD, 8192, 0, tensor_parallel_size=1)
    t8 = cost_model.layer_pass_time(LLAMA_13B, PassKind.FORWARD, 8192, 0, tensor_parallel_size=8)
    assert t1 > 4 * t8  # not exactly 8x because of the fixed launch overhead


def test_output_layer_time_sharded_by_vocab_parallel(cost_model):
    base = cost_model.output_layer_time(LLAMA_13B, PassKind.FORWARD, 8192, 8, 1)
    sharded = cost_model.output_layer_time(LLAMA_13B, PassKind.FORWARD, 8192, 8, 4)
    assert base > 3 * sharded


def test_zero_flops_pass_has_zero_time(cost_model):
    assert cost_model.time_of(FlopsBreakdown(), PassKind.FORWARD, tokens=128) == 0.0


def test_overhead_can_be_excluded(cost_model):
    flops = layer_forward_flops(LLAMA_13B, 1024, 0)
    with_overhead = cost_model.time_of(flops, PassKind.FORWARD, 1024)
    without = cost_model.time_of(flops, PassKind.FORWARD, 1024, include_overhead=False)
    assert with_overhead == pytest.approx(without + HOPPER_80GB.kernel_launch_overhead)


def test_slower_gpu_takes_longer():
    hopper = CostModel(HOPPER_80GB)
    ampere = CostModel(AMPERE_80GB)
    args = (LLAMA_13B, PassKind.FORWARD, 8192, 0)
    assert ampere.layer_pass_time(*args) > hopper.layer_pass_time(*args)


def test_backward_split_sums_to_combined(cost_model):
    """Bi + Bw should equal B up to one duplicated launch overhead."""
    flops = layer_forward_flops(LLAMA_13B, 2048, 4096)
    combined = cost_model.time_of(flops, PassKind.BACKWARD, 2048, include_overhead=False)
    bi = cost_model.time_of(flops, PassKind.BACKWARD_INPUT, 2048, include_overhead=False)
    bw = cost_model.time_of(flops, PassKind.BACKWARD_WEIGHT, 2048, include_overhead=False)
    assert combined == pytest.approx(bi + bw, rel=1e-9)
