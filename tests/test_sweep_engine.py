"""Tests for the sweep engine: expansion, pruning, memoization, fan-out."""

import pytest

from repro.constants import UnknownNameError
from repro.parallel.search import grid_search
from repro.sweep import SweepCache, SweepSpec, run_sweep
from repro.sweep.engine import argmax_stream
from repro.sweep import cache as cache_module


def _scheme_spec(name="scheme-demo"):
    """A tiny, fast spec over the real scheme-point evaluator."""
    return SweepSpec.make(
        name=name,
        evaluator="scheme-point",
        axes={"scheme": ("1f1b", "slimpipe"), "sequence_k": (32, 64)},
        base={
            "model": "llama-13b",
            "tensor_parallel": 8,
            "pipeline_parallel": 8,
            "batch_sequences": 4,
            "virtual_stages": 5,
            "slices_per_stage": 1,
        },
    )


# ---------------------------------------------------------------------------
# argmax_stream (the shared grid-search primitive)
# ---------------------------------------------------------------------------
class TestArgmaxStream:
    def test_empty_stream(self):
        assert argmax_stream([], lambda item: item) == (None, float("-inf"))

    def test_all_infeasible(self):
        assert argmax_stream([1, 2, 3], lambda item: None) == (None, float("-inf"))

    def test_keeps_the_best(self):
        best, value = argmax_stream([3, 1, 4, 1, 5], lambda item: -abs(item - 4))
        assert best == 4 and value == 0

    def test_ties_keep_the_first_item(self):
        best, _ = argmax_stream(["a", "b"], lambda item: 1.0)
        assert best == "a"

    def test_grid_search_delegates(self):
        candidates = [10, 20, 30]
        best, value = grid_search(candidates, lambda c: None if c == 30 else float(c))
        assert best == 20 and value == 20.0


# ---------------------------------------------------------------------------
# run_sweep
# ---------------------------------------------------------------------------
class TestRunSweep:
    def test_serial_results_align_with_points(self):
        result = run_sweep(_scheme_spec())
        assert len(result.points) == len(result.results) == 4
        assert result.stats.total == 4
        assert result.stats.evaluated == 4
        assert result.stats.cache_hits == 0
        by_point = {(p["scheme"], p["sequence_k"]): r for p, r in result}
        assert by_point[("slimpipe", 32)]["feasible"] is True
        # SlimPipe's bubble fraction beats 1F1B's at every context length.
        for seq_k in (32, 64):
            assert (
                by_point[("slimpipe", seq_k)]["bubble_fraction"]
                < by_point[("1f1b", seq_k)]["bubble_fraction"]
            )

    def test_unknown_evaluator_fails_fast(self):
        spec = SweepSpec.make("bad", "no-such-evaluator", axes={"a": (1,)})
        with pytest.raises(UnknownNameError, match="no-such-evaluator"):
            run_sweep(spec)

    def test_workers_match_serial(self):
        spec = _scheme_spec()
        serial = run_sweep(spec)
        parallel = run_sweep(spec, workers=2)
        assert serial.results == parallel.results
        assert parallel.stats.workers == 2

    def test_to_text_renders_axes_and_stats(self):
        text = run_sweep(_scheme_spec()).to_text()
        assert "scheme" in text and "sequence_k" in text
        assert "4 points" in text and "bubble_fraction" in text


class TestCaching:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        spec = _scheme_spec()
        cache = SweepCache(tmp_path)
        cold = run_sweep(spec, cache=cache)
        assert cold.stats.evaluated == 4 and cold.stats.cache_hits == 0
        assert cache.path_for(spec).exists()
        warm = run_sweep(spec, cache=cache)
        assert warm.stats.evaluated == 0 and warm.stats.cache_hits == 4
        assert warm.results == cold.results

    def test_no_cache_never_touches_disk(self, tmp_path):
        cache = SweepCache(tmp_path, enabled=False)
        run_sweep(_scheme_spec(), cache=cache)
        assert list(tmp_path.iterdir()) == []

    def test_partial_overlap_evaluates_only_new_points(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_sweep(_scheme_spec(), cache=cache)
        wider = SweepSpec.make(
            name="scheme-demo",  # same cache file
            evaluator="scheme-point",
            axes={"scheme": ("1f1b", "slimpipe"), "sequence_k": (32, 64, 128)},
            base=dict(_scheme_spec().base),
        )
        result = run_sweep(wider, cache=cache)
        assert result.stats.cache_hits == 4
        assert result.stats.evaluated == 2

    def test_fingerprint_change_invalidates_the_cache(self, tmp_path, monkeypatch):
        spec = _scheme_spec()
        cache = SweepCache(tmp_path)
        run_sweep(spec, cache=cache)
        monkeypatch.setattr(
            cache_module, "code_fingerprint", lambda: "a-different-world"
        )
        rerun = run_sweep(spec, cache=cache)
        assert rerun.stats.cache_hits == 0
        assert rerun.stats.evaluated == 4

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        spec = _scheme_spec()
        cache = SweepCache(tmp_path)
        cache.path_for(spec).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(spec).write_text("{not json")
        result = run_sweep(spec, cache=cache)
        assert result.stats.evaluated == 4


class TestPruning:
    def test_memory_model_prunes_impossible_cells(self):
        # Llama 149B's optimizer states alone (~18 bytes/param) dwarf eight
        # 80 GB GPUs: the pruner must reject the cell without grid searching.
        spec = SweepSpec.make(
            name="prune-demo",
            evaluator="fig12-cell",
            axes={"system": ("slimpipe",)},
            base={"model": "llama-149b", "num_gpus": 8, "sequence_k": 64},
        )
        result = run_sweep(spec)
        assert result.stats.pruned == 1 and result.stats.evaluated == 0
        row = result.results[0]
        assert row["pruned"] is True
        assert row["feasible"] is False and row["reason"] == "oom"

    def test_feasible_cells_are_not_pruned(self):
        spec = SweepSpec.make(
            name="prune-demo-2",
            evaluator="fig12-cell",
            axes={"system": ("megatron-lm",)},
            base={"model": "llama-13b", "num_gpus": 32, "sequence_k": 32},
        )
        result = run_sweep(spec)
        assert result.stats.pruned == 0 and result.stats.evaluated == 1
        assert result.results[0]["feasible"] is True
