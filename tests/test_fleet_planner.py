"""Tests for the fleet capacity planner (repro.fleet.planner)."""

import pytest

from repro.constants import UnknownNameError
from repro.fleet.planner import _ladder, plan_capacity
from repro.sweep.cache import SweepCache


class TestLadder:
    def test_doubles_up_to_the_cap(self):
        assert _ladder(16) == [1, 2, 4, 8, 16]
        assert _ladder(12) == [1, 2, 4, 8, 12]
        assert _ladder(1) == [1]


class TestValidation:
    def test_bad_slo_rejected(self):
        with pytest.raises(ValueError):
            plan_capacity("canary-chat", slo_ttft_p99=0.0)
        with pytest.raises(ValueError):
            plan_capacity("canary-chat", slo_ttft_p99=1.0, min_goodput=1.5)

    def test_unknown_scenario_lists_names(self):
        with pytest.raises(UnknownNameError, match="canary-chat"):
            plan_capacity("mega-fleet", slo_ttft_p99=1.0)


class TestPlanning:
    def test_returns_minimal_feasible_count(self):
        plan = plan_capacity("canary-chat", slo_ttft_p99=0.3, max_replicas=4)
        assert plan.feasible
        assert plan.replicas is not None
        chosen = plan.chosen
        assert chosen is not None
        assert float(chosen["ttft_p99"]) <= 0.3
        # Minimality: the next-smaller evaluated fleet (when one exists)
        # violated the SLO — that is what the bisection bracket means.
        smaller = [r for r, _ in plan.evaluations if r < plan.replicas]
        if smaller:
            below = dict(plan.evaluations)[max(smaller)]
            assert float(below["ttft_p99"]) > 0.3

    def test_monotone_in_offered_load(self):
        """Higher QPS never plans a smaller fleet (the ISSUE acceptance)."""
        relaxed = plan_capacity("canary-chat", slo_ttft_p99=0.3, load_scale=1.0)
        loaded = plan_capacity("canary-chat", slo_ttft_p99=0.3, load_scale=8.0)
        assert relaxed.feasible and loaded.feasible
        assert loaded.replicas >= relaxed.replicas
        # And the loaded plan genuinely needs more than one replica, so the
        # comparison is not trivially 1 >= 1.
        assert loaded.replicas > 1

    def test_infeasible_slo_reported(self):
        plan = plan_capacity("canary-chat", slo_ttft_p99=1e-4, max_replicas=2)
        assert not plan.feasible
        assert plan.replicas is None
        assert plan.chosen is None
        assert "infeasible" in plan.to_text()

    def test_report_renders_the_frontier(self):
        plan = plan_capacity("canary-chat", slo_ttft_p99=0.3, max_replicas=4)
        text = plan.to_text()
        assert "capacity plan" in text
        assert "<- plan" in text
        assert "GPU-hours" in text

    def test_cache_avoids_reevaluation(self, tmp_path):
        cache = SweepCache(directory=tmp_path)
        plan_capacity("canary-chat", slo_ttft_p99=0.3, max_replicas=2, cache=cache)
        assert (tmp_path / "fleet-plan-canary-chat.json").exists()
        # Second run resolves every ladder point from the cache; the plan
        # must come out identical.
        again = plan_capacity("canary-chat", slo_ttft_p99=0.3, max_replicas=2, cache=cache)
        assert again.feasible
