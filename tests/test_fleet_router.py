"""Tests for fleet routing policies (repro.fleet.router).

The unit tests pin each policy's choice on synthetic snapshots; the
hypothesis property test is the satellite request-conservation guarantee:
whatever the trace, the router and the failure plan, every admitted request
finishes exactly once and the fleet-wide token-accounting law holds.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import UnknownNameError
from repro.fleet.cluster import FleetConfig, FleetEngine
from repro.fleet.failures import FailureEvent, FailurePlan
from repro.fleet.router import (
    ReplicaSnapshot,
    available_routers,
    get_router,
)
from repro.model.config import get_model_config
from repro.serving.workload import Request, poisson_trace


def _snap(replica_id, queue=0, running=0, outstanding=0, kv_free=1.0):
    return ReplicaSnapshot(
        replica_id=replica_id,
        queue_depth=queue,
        running_requests=running,
        outstanding_tokens=outstanding,
        kv_free_fraction=kv_free,
    )


def _request(request_id=0, arrival=0.0, prompt=128, output=16):
    return Request(
        request_id=request_id,
        arrival_time=arrival,
        prompt_tokens=prompt,
        output_tokens=output,
    )


class TestRegistry:
    def test_all_policies_listed(self):
        assert available_routers() == [
            "kv-aware",
            "least-tokens",
            "round-robin",
            "session-affinity",
        ]

    def test_unknown_router_lists_names(self):
        with pytest.raises(UnknownNameError, match="round-robin"):
            get_router("weighted-random")

    def test_instances_are_fresh(self):
        # Stateful policies (cursor, affinity table) must not share state.
        assert get_router("round-robin") is not get_router("round-robin")


class TestRoundRobin:
    def test_cycles_in_id_order(self):
        router = get_router("round-robin")
        snaps = [_snap(2), _snap(0), _snap(1)]
        picks = [router.route(_request(i), i, snaps) for i in range(5)]
        assert picks == [0, 1, 2, 0, 1]

    def test_skips_vanished_replicas(self):
        router = get_router("round-robin")
        assert router.route(_request(0), 0, [_snap(0), _snap(1)]) == 0
        # Replica 1 disappeared (crashed); the cursor keeps cycling the rest.
        assert router.route(_request(1), 1, [_snap(0)]) == 0

    def test_empty_offer_rejected(self):
        with pytest.raises(ValueError):
            get_router("round-robin").route(_request(0), 0, [])


class TestLeastTokens:
    def test_picks_fewest_outstanding_tokens(self):
        router = get_router("least-tokens")
        snaps = [_snap(0, outstanding=500), _snap(1, outstanding=20), _snap(2, outstanding=80)]
        assert router.route(_request(0), 0, snaps) == 1

    def test_ties_break_by_queue_then_id(self):
        router = get_router("least-tokens")
        snaps = [_snap(0, outstanding=50, queue=2), _snap(1, outstanding=50, queue=1)]
        assert router.route(_request(0), 0, snaps) == 1
        snaps = [_snap(1, outstanding=50), _snap(0, outstanding=50)]
        assert router.route(_request(0), 0, snaps) == 0


class TestSessionAffinity:
    def test_sessions_stick(self):
        router = get_router("session-affinity")
        snaps = [_snap(0, outstanding=100), _snap(1, outstanding=0)]
        first = router.route(_request(0), session=7, snapshots=snaps)
        assert first == 1  # least-loaded placement of the new session
        # The home replica is now the busier one, but the session stays.
        busier = [_snap(0, outstanding=0), _snap(1, outstanding=9000)]
        assert router.route(_request(1), session=7, snapshots=busier) == 1

    def test_rehomes_when_home_vanishes(self):
        router = get_router("session-affinity")
        snaps = [_snap(0), _snap(1, outstanding=5)]
        assert router.route(_request(0), session=3, snapshots=snaps) == 0
        survivors = [_snap(1, outstanding=5), _snap(2, outstanding=50)]
        assert router.route(_request(1), session=3, snapshots=survivors) == 1
        # ... and the new home sticks in turn.
        assert router.route(_request(2), session=3, snapshots=survivors) == 1


class TestKVAware:
    def test_picks_most_free_kv(self):
        router = get_router("kv-aware")
        snaps = [_snap(0, kv_free=0.2), _snap(1, kv_free=0.9), _snap(2, kv_free=0.5)]
        assert router.route(_request(0), 0, snaps) == 1

    def test_kv_ties_break_by_outstanding_tokens(self):
        router = get_router("kv-aware")
        snaps = [_snap(0, kv_free=0.5, outstanding=100), _snap(1, kv_free=0.5, outstanding=10)]
        assert router.route(_request(0), 0, snaps) == 1


# ---------------------------------------------------------------------------
# Property: request conservation under arbitrary traces and failure plans
# ---------------------------------------------------------------------------
_MODEL = get_model_config("llama-13b")


def _tiny_config():
    return FleetConfig(
        gpus_per_replica=1,
        initial_replicas=2,
        max_replicas=4,
        sessions=4,
    )


_failure_events = st.lists(
    st.builds(
        FailureEvent,
        time=st.floats(min_value=0.05, max_value=4.0, allow_nan=False),
        kind=st.sampled_from(["crash", "slow"]),
        replica_index=st.integers(min_value=0, max_value=3),
        duration=st.floats(min_value=0.2, max_value=2.0, allow_nan=False),
        slowdown=st.just(2.0),
    ),
    max_size=3,
)


@settings(max_examples=8, deadline=None)
@given(
    router=st.sampled_from(["round-robin", "least-tokens", "session-affinity", "kv-aware"]),
    seed=st.integers(min_value=0, max_value=2**20),
    num_requests=st.integers(min_value=4, max_value=16),
    events=_failure_events,
)
def test_request_conservation_under_failures(router, seed, num_requests, events):
    """No router loses or duplicates a request, crash storms included."""
    trace = poisson_trace(
        num_requests=num_requests,
        arrival_rate=4.0,
        prompt_mean=512,
        output_mean=24,
        seed=seed,
    )
    engine = FleetEngine(
        _MODEL,
        _tiny_config(),
        router=router,
        failure_plan=FailurePlan(events=tuple(events)),
    )
    result = engine.run(trace)
    # Every admitted request finished exactly once (records are per-request,
    # so one finish timestamp each), none were lost to failover ...
    assert result.metrics.num_requests == len(trace)
    assert all(record.finished for record in result.records)
    assert len({id(record) for record in result.records}) == len(trace)
    for record in result.records:
        assert record.first_token_time is not None
        assert record.finish_time >= record.first_token_time
        assert record.ttft >= 0.0
    # ... and the fleet-wide token-accounting conservation law held across
    # every preemption, crash and re-route.
    assert result.token_accounting_balanced
