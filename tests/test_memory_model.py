"""Tests for the memory model, anchored to the paper's own arithmetic."""

import pytest

from repro.constants import GIB, tokens_from_k
from repro.model import (
    ADAM_MIXED_PRECISION,
    LLAMA_13B,
    LLAMA_70B,
    MIXTRAL_8X7B,
    OptimizerSpec,
    RecomputeMode,
    activation_bytes_per_token_per_layer,
    kv_cache_bytes_per_token_per_layer,
    layers_per_pipeline_stage,
    logits_bytes_per_token,
    model_state_bytes_per_device,
)


def test_full_recompute_matches_paper_llama70b_example():
    """Section 3: Llama 70B, 1M context, t=8, full recompute -> 160 GiB."""
    model = LLAMA_70B
    per_token_layer = activation_bytes_per_token_per_layer(
        model, RecomputeMode.FULL, tensor_parallel_size=8
    )
    total = per_token_layer * model.num_layers * tokens_from_k(1024)
    assert total / GIB == pytest.approx(160.0, rel=1e-6)


def test_recompute_modes_are_ordered():
    for model in (LLAMA_13B, LLAMA_70B, MIXTRAL_8X7B):
        none = activation_bytes_per_token_per_layer(model, RecomputeMode.NONE)
        selective = activation_bytes_per_token_per_layer(model, RecomputeMode.SELECTIVE)
        full = activation_bytes_per_token_per_layer(model, RecomputeMode.FULL)
        assert none > selective > full


def test_activation_memory_sharded_by_tp():
    one = activation_bytes_per_token_per_layer(LLAMA_13B, RecomputeMode.NONE, 1)
    eight = activation_bytes_per_token_per_layer(LLAMA_13B, RecomputeMode.NONE, 8)
    assert one == pytest.approx(8 * eight)


def test_kv_cache_bytes():
    model = LLAMA_70B
    expected = 2 * model.kv_channels * 2 / 8
    assert kv_cache_bytes_per_token_per_layer(model, 8) == pytest.approx(expected)


def test_logits_memory_matches_paper_example():
    """Section 4.3.1: 256K context, 128,000 vocab, 8-way TP -> about 16 GiB."""
    per_token = logits_bytes_per_token(LLAMA_13B, tensor_parallel_size=8)
    total = per_token * tokens_from_k(256)
    assert total / GIB == pytest.approx(16.0, rel=0.05)
    sharded = logits_bytes_per_token(LLAMA_13B, tensor_parallel_size=8, vocab_parallel_size=4)
    assert sharded == pytest.approx(per_token / 4)


def test_invalid_tp_rejected():
    with pytest.raises(ValueError):
        activation_bytes_per_token_per_layer(LLAMA_13B, RecomputeMode.NONE, 0)


def test_layers_per_stage():
    assert layers_per_pipeline_stage(LLAMA_70B, 8) == 10
    with pytest.raises(ValueError):
        layers_per_pipeline_stage(LLAMA_70B, 7)
    with pytest.raises(ValueError):
        layers_per_pipeline_stage(LLAMA_70B, 0)


def test_optimizer_spec_distributed_sharding():
    spec = OptimizerSpec()
    alone = spec.state_bytes_per_param(1)
    sharded = spec.state_bytes_per_param(8)
    assert alone == pytest.approx(2 + 4 + 12)
    assert sharded == pytest.approx(2 + 4 + 12 / 8)
    dense = OptimizerSpec(distributed_optimizer=False)
    assert dense.state_bytes_per_param(8) == pytest.approx(18)


def test_model_state_memory_scales_with_pp():
    kwargs = dict(tensor_parallel_size=8, data_parallel_size=1)
    full = model_state_bytes_per_device(LLAMA_70B, pipeline_parallel_size=1, **kwargs)
    split = model_state_bytes_per_device(LLAMA_70B, pipeline_parallel_size=8, **kwargs)
    assert split.transformer_layers == pytest.approx(full.transformer_layers / 8)


def test_model_state_memory_vocab_placement():
    kwargs = dict(tensor_parallel_size=8, pipeline_parallel_size=4, data_parallel_size=2)
    first = model_state_bytes_per_device(LLAMA_70B, pipeline_rank=0, **kwargs)
    middle = model_state_bytes_per_device(LLAMA_70B, pipeline_rank=1, **kwargs)
    last = model_state_bytes_per_device(LLAMA_70B, pipeline_rank=3, **kwargs)
    assert first.embedding > 0 and middle.embedding == 0
    assert last.output_layer > 0 and middle.output_layer == 0
    # With vocabulary parallelism every stage holds an equal 1/p share.
    sharded = model_state_bytes_per_device(LLAMA_70B, pipeline_rank=2, vocab_parallel=True, **kwargs)
    assert sharded.embedding == pytest.approx(first.embedding / 4)


def test_model_state_memory_moe_expert_parallel():
    base = model_state_bytes_per_device(
        MIXTRAL_8X7B, tensor_parallel_size=1, pipeline_parallel_size=1, expert_parallel_size=1
    )
    ep8 = model_state_bytes_per_device(
        MIXTRAL_8X7B, tensor_parallel_size=1, pipeline_parallel_size=1, expert_parallel_size=8
    )
    assert ep8.transformer_layers < base.transformer_layers
    # Expert weights dominate a Mixtral layer, so EP=8 should cut layer memory
    # by far more than half.
    assert ep8.transformer_layers < 0.3 * base.transformer_layers


def test_model_state_total_consistency():
    mem = model_state_bytes_per_device(
        LLAMA_13B, tensor_parallel_size=8, pipeline_parallel_size=2, data_parallel_size=4
    )
    assert mem.total == pytest.approx(mem.transformer_layers + mem.embedding + mem.output_layer)
    # Sanity: the whole 13B model in mixed precision with dp=4 sharded optimizer
    # should fit comfortably in tens of GiB per device.
    assert mem.total < 40 * GIB
