"""SLO burn-rate arithmetic, windowed time series, and empty-sample errors.

The burn windows are checked against hand-computed traces: known finish
times with known TTFT/TPOT against a known SLO, so every window's
good/total tally, burn rate and flag is arithmetic on paper first and an
assertion second.  The time-series half pins the window bucketing and the
double-count guard for disaggregated arrivals; the tail covers satellite
work on the friendlier empty-sample errors.
"""

import pytest

from repro.obs import events as obs_events
from repro.obs.events import EventRecorder
from repro.obs.slo import SLOBurnMonitor, burn_report, burn_report_from_records
from repro.obs.timeseries import build_timeseries
from repro.serving.metrics import (
    SLO,
    PercentileSummary,
    RequestRecord,
    compute_metrics,
    percentile,
)
from repro.serving.scenarios import SCENARIO_REGISTRY, run_scenario
from repro.serving.workload import Request

_SLO = SLO(ttft=1.0, tpot=0.05)


def _finish(monitor, time, good, tokens=10):
    # Good requests sit well inside both bounds; bad ones blow the TTFT bound.
    monitor.observe(time, 0.5 if good else 2.0, 0.01, tokens)


def test_burn_rate_hand_computed():
    # target 90% => error budget 10%.  Window [0, 10): 4 good of 5 =>
    # bad fraction 0.2 => burn 2.0x.  Window [10, 20): all 3 good => 0x.
    # Window [20, 30): 1 good of 4 => bad 0.75 => burn 7.5x.
    monitor = SLOBurnMonitor(_SLO, window=10.0, target=0.9)
    for t in (1.0, 2.0, 3.0, 4.0):
        _finish(monitor, t, good=True)
    _finish(monitor, 9.0, good=False)
    for t in (11.0, 15.0, 19.9):
        _finish(monitor, t, good=True)
    _finish(monitor, 20.0, good=True)
    for t in (21.0, 22.0, 25.0):
        _finish(monitor, t, good=False)
    report = monitor.report()
    assert [(w.start, w.end) for w in report.windows] == [
        (0.0, 10.0),
        (10.0, 20.0),
        (20.0, 30.0),
    ]
    assert [w.requests for w in report.windows] == [5, 3, 4]
    assert [w.good_requests for w in report.windows] == [4, 3, 1]
    assert report.windows[0].burn_rate == pytest.approx(2.0)
    assert report.windows[1].burn_rate == 0.0
    assert report.windows[2].burn_rate == pytest.approx(7.5)
    # Default threshold 1.0: windows 0 and 2 are burning.
    assert report.burn_windows == [report.windows[0], report.windows[2]]
    assert report.overall_attainment == pytest.approx(8 / 12)
    # Overall bad fraction 4/12 against a 0.1 budget.
    assert report.budget_consumed == pytest.approx((4 / 12) / 0.1)


def test_burn_accounts_tokens_and_attainment():
    monitor = SLOBurnMonitor(_SLO, window=5.0, target=0.95)
    _finish(monitor, 1.0, good=True, tokens=30)
    _finish(monitor, 2.0, good=False, tokens=70)
    report = monitor.report()
    (window,) = report.windows
    assert window.total_tokens == 100
    assert window.good_tokens == 30
    assert window.attainment == pytest.approx(0.5)
    assert window.token_attainment == pytest.approx(0.3)
    assert window.bad_requests == 1
    # bad fraction 0.5 over a 5% budget.
    assert window.burn_rate == pytest.approx(10.0)


def test_boundary_finish_lands_in_next_window():
    monitor = SLOBurnMonitor(_SLO, window=10.0, target=0.9)
    _finish(monitor, 10.0, good=True)
    (window,) = monitor.report().windows
    assert (window.start, window.end) == (10.0, 20.0)


def test_burn_threshold_and_validation():
    monitor = SLOBurnMonitor(_SLO, window=10.0, target=0.9, burn_threshold=3.0)
    for t in (1.0, 2.0, 3.0, 4.0):
        _finish(monitor, t, good=True)
    _finish(monitor, 5.0, good=False)
    report = monitor.report()  # burn 2.0x < 3.0x threshold
    assert report.burn_windows == []
    with pytest.raises(ValueError, match="window"):
        SLOBurnMonitor(_SLO, window=0.0)
    with pytest.raises(ValueError, match="target"):
        SLOBurnMonitor(_SLO, target=1.0)


def test_report_serialisation(tmp_path):
    monitor = SLOBurnMonitor(_SLO, window=10.0, target=0.9)
    _finish(monitor, 1.0, good=False)
    report = monitor.report()
    text = report.to_text()
    assert "BURN" in text
    assert "budget consumed" in text
    payload = report.to_json()
    assert payload["windows"][0]["burning"] is True
    assert payload["error_budget"] == pytest.approx(0.1)
    import json

    path = report.write(str(tmp_path / "slo.json"))
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle) == json.loads(json.dumps(payload))


def _recorded_chat():
    recorder = EventRecorder()
    result = run_scenario(SCENARIO_REGISTRY["chat"], "colocated", seed=0, observe=recorder)
    return recorder, result


def test_burn_report_sources_agree():
    # The event-stream and request-record paths must tally identically.
    recorder, result = _recorded_chat()
    slo = SCENARIO_REGISTRY["chat"].slo
    from_events = burn_report(recorder, slo)
    from_records = burn_report_from_records(result.records, slo)
    assert from_events.to_json() == from_records.to_json()
    good = sum(1 for r in result.records if r.meets(slo))
    assert from_events.total_good == good
    assert from_events.total_requests == sum(1 for r in result.records if r.finished)


# ---------------------------------------------------------------------------
# Windowed time series
# ---------------------------------------------------------------------------


def _synthetic_recorder():
    recorder = EventRecorder()
    recorder.emit(0.5, obs_events.ARRIVE, 0, 1)
    recorder.emit(1.0, obs_events.ARRIVE, 0, 2)
    recorder.emit(2.0, obs_events.FIRST_TOKEN, 0, 1, (1.5,))
    # finish data: (ttft, tpot, output_tokens)
    recorder.emit(6.0, obs_events.FINISH, 0, 1, (1.5, 0.02, 40))
    recorder.emit(7.0, obs_events.FINISH, 0, 2, (0.2, 0.2, 60))
    # iteration data: (duration, prefill_tokens, decodes, queue, running, kv)
    recorder.emit(3.0, obs_events.ITERATION, 0, None, (0.1, 100, 8, 3, 4, 0.25))
    recorder.emit(8.0, obs_events.ITERATION, 0, None, (0.1, 0, 16, 1, 2, 0.75))
    return recorder


def test_timeseries_window_arithmetic():
    series = build_timeseries(_synthetic_recorder(), window=5.0, slo=_SLO)
    arrivals = series.counters["arrivals"].intervals()
    assert arrivals == [{"start": 0.0, "end": 5.0, "count": 2.0, "per_second": 0.4}]
    finished = series.counters["finished_requests"].intervals()
    assert finished == [{"start": 5.0, "end": 10.0, "count": 2.0, "per_second": 0.4}]
    assert series.counters["output_tokens"].total == 100.0
    # Request 1 blows TTFT, request 2 blows TPOT: neither is good.
    assert "good_requests" not in series.counters
    tpot = series.metrics["tpot"].intervals()
    assert tpot == [
        {"start": 5.0, "end": 10.0, "count": 2, "mean": pytest.approx(0.11), "min": 0.02, "max": 0.2}
    ]
    batch = series.metrics["batch_tokens"].intervals()
    assert batch[0]["mean"] == 108.0  # 100 prefill + 8 decode
    assert batch[1]["mean"] == 16.0
    kv = series.metrics["kv_utilization"]
    assert kv.sketch.summary()["min"] == 0.25
    assert kv.sketch.summary()["max"] == 0.75


def test_timeseries_goodput_counter():
    recorder = EventRecorder()
    recorder.emit(1.0, obs_events.FINISH, 0, 1, (0.5, 0.01, 10))  # good
    recorder.emit(2.0, obs_events.FINISH, 0, 2, (2.0, 0.01, 10))  # bad TTFT
    series = build_timeseries(recorder, window=5.0, slo=_SLO)
    assert series.counters["good_requests"].total == 1.0
    assert series.counters["finished_requests"].total == 2.0


def test_timeseries_ignores_decode_pool_rearrivals():
    recorder = EventRecorder()
    recorder.emit(0.0, obs_events.ARRIVE, 0, 1)
    recorder.emit(1.0, obs_events.ARRIVE, 1, 1)  # decode-pool re-observation
    series = build_timeseries(recorder, window=5.0)
    assert series.counters["arrivals"].total == 1.0


def test_timeseries_disaggregated_counts_each_request_once():
    recorder = EventRecorder()
    result = run_scenario(
        SCENARIO_REGISTRY["chat"], "disaggregated", seed=0, observe=recorder
    )
    series = build_timeseries(recorder)
    assert series.counters["arrivals"].total == len(result.records)


def test_timeseries_export_shape(tmp_path):
    recorder, _ = _recorded_chat()
    series = build_timeseries(recorder, slo=SCENARIO_REGISTRY["chat"].slo)
    payload = series.to_json()
    assert payload["window_seconds"] == 5.0
    assert {"ttft", "tpot", "queue_depth", "batch_tokens", "kv_utilization"} <= set(
        payload["metrics"]
    )
    for block in payload["metrics"].values():
        assert block["summary"]["count"] >= 1
        assert block["intervals"]
    import json

    path = series.write(str(tmp_path / "timeseries.json"))
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle) == json.loads(json.dumps(payload))


def test_window_must_be_positive():
    with pytest.raises(ValueError, match="window"):
        build_timeseries(EventRecorder(), window=0.0)


# ---------------------------------------------------------------------------
# Friendlier empty-sample errors (satellite: metrics error messages)
# ---------------------------------------------------------------------------


def test_percentile_empty_error_names_metric():
    with pytest.raises(ValueError, match="cannot summarise TTFT"):
        percentile([], 95.0, metric="TTFT")
    with pytest.raises(ValueError, match="cannot summarise sample"):
        PercentileSummary([])
    with pytest.raises(ValueError, match="did any request finish"):
        PercentileSummary([], metric="TPOT")


def test_compute_metrics_zero_finished_error_counts_records():
    records = [
        RequestRecord(request=Request(request_id=i, arrival_time=0.0, prompt_tokens=8, output_tokens=4))
        for i in range(3)
    ]
    with pytest.raises(ValueError, match="3 records, 0 finished"):
        compute_metrics(records, duration=1.0, slo=SLO())
    with pytest.raises(ValueError, match="0 records"):
        compute_metrics([], duration=1.0, slo=SLO())
