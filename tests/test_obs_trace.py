"""Perfetto/Chrome trace export: schema validity and byte determinism.

The trace viewers are silent about malformed events — they just drop them —
so this suite pins the schema invariants the Chrome trace-event format
requires (phase codes, required keys, non-negative durations, balanced
async lifelines) and the exporter's determinism contract: the trace is a
pure function of the event stream, so two identical runs serialise to
byte-identical JSON.
"""

import json

import pytest

from repro.fleet.scenarios import FLEET_SCENARIO_REGISTRY, run_fleet_scenario
from repro.obs.events import EventRecorder
from repro.obs.trace import to_perfetto, write_perfetto
from repro.serving.scenarios import SCENARIO_REGISTRY, run_scenario

_KNOWN_PHASES = {"M", "X", "C", "i", "b", "e", "n"}


def _serving_trace(mode="colocated", with_timeline=True):
    recorder = EventRecorder()
    result = run_scenario(SCENARIO_REGISTRY["chat"], mode, seed=0, observe=recorder)
    return to_perfetto(recorder, timeline=result.timeline if with_timeline else None)


def _fleet_trace(name="steady-chat"):
    recorder = EventRecorder()
    run_fleet_scenario(FLEET_SCENARIO_REGISTRY[name], seed=0, observe=recorder)
    return to_perfetto(recorder)


def _check_schema(trace):
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    assert events
    open_async = {}
    for event in events:
        assert event["ph"] in _KNOWN_PHASES
        assert "pid" in event
        if event["ph"] == "M":
            assert event["name"] in ("process_name", "thread_name")
            assert "name" in event["args"]
        else:
            assert event["ts"] >= 0
        if event["ph"] == "X":
            assert event["dur"] >= 0
        if event["ph"] == "C":
            assert "value" in event["args"]
        if event["ph"] == "i":
            assert event["s"] == "g"
        if event["ph"] in ("b", "e"):
            key = (event["cat"], event["id"])
            if event["ph"] == "b":
                assert not open_async.get(key), f"lifeline {key} opened twice"
                open_async[key] = True
            else:
                assert open_async.get(key), f"lifeline {key} closed while closed"
                open_async[key] = False
    assert not any(open_async.values()), "unclosed request lifelines"


@pytest.mark.parametrize("mode", ["colocated", "disaggregated"])
def test_serving_trace_schema(mode):
    _check_schema(_serving_trace(mode))


def test_serving_trace_schema_without_timeline():
    _check_schema(_serving_trace(with_timeline=False))


@pytest.mark.parametrize("name", ["steady-chat", "flash-crowd", "unreliable"])
def test_fleet_trace_schema(name):
    _check_schema(_fleet_trace(name))


def test_serving_trace_has_all_pids_and_counters():
    trace = _serving_trace()
    events = trace["traceEvents"]
    names = {
        e["args"]["name"] for e in events if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert names == {"engine", "requests", "counters", "cluster"}
    counters = {e["name"] for e in events if e["ph"] == "C"}
    assert any(name.startswith("queue depth") for name in counters)
    assert any(name.startswith("batch tokens") for name in counters)
    assert any(name.startswith("kv utilization") for name in counters)
    assert any(e["ph"] == "X" for e in events), "no iteration spans"


def test_prefix_scenario_emits_hit_rate_counter():
    recorder = EventRecorder()
    result = run_scenario(
        SCENARIO_REGISTRY["shared-system-prompt"], "colocated", seed=0, observe=recorder
    )
    trace = to_perfetto(recorder, timeline=result.timeline)
    rates = [
        e["args"]["value"]
        for e in trace["traceEvents"]
        if e["ph"] == "C" and e["name"].startswith("prefix hit rate")
    ]
    assert rates, "prefix-cache scenario produced no hit-rate counter"
    assert all(0.0 <= value <= 1.0 for value in rates)


def test_fleet_trace_has_autoscaler_counters_and_markers():
    trace = _fleet_trace("flash-crowd")
    events = trace["traceEvents"]
    counters = {e["name"] for e in events if e["ph"] == "C"}
    assert {"fleet queue depth", "arrival rate (ewma)", "replica target"} <= counters
    instants = {e["name"] for e in events if e["ph"] == "i"}
    assert "activate" in instants


def test_trace_is_byte_deterministic():
    first = json.dumps(_serving_trace(), sort_keys=True)
    second = json.dumps(_serving_trace(), sort_keys=True)
    assert first == second
    fleet_first = json.dumps(_fleet_trace(), sort_keys=True)
    fleet_second = json.dumps(_fleet_trace(), sort_keys=True)
    assert fleet_first == fleet_second


def test_write_perfetto_round_trips(tmp_path):
    recorder = EventRecorder()
    result = run_scenario(SCENARIO_REGISTRY["chat"], "colocated", seed=0, observe=recorder)
    path = write_perfetto(recorder, str(tmp_path / "trace.json"), timeline=result.timeline)
    with open(path, encoding="utf-8") as handle:
        loaded = json.load(handle)
    assert loaded == to_perfetto(recorder, timeline=result.timeline)


def test_time_unit_must_be_positive():
    with pytest.raises(ValueError, match="time_unit_us"):
        to_perfetto(EventRecorder(), time_unit_us=0.0)
