"""Structural tests for the baseline pipeline schedules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.costs import PassKind
from repro.schedules import (
    Pass,
    PipelineSchedule,
    ScheduleValidationError,
    available_schedules,
    build_1f1b_schedule,
    build_gpipe_schedule,
    build_interleaved_1f1b_schedule,
    build_schedule,
    build_terapipe_schedule,
    build_zero_bubble_v_schedule,
    v_shape_stage_of,
)


# ---------------------------------------------------------------------------
# Pass
# ---------------------------------------------------------------------------
def test_pass_validation_and_helpers():
    p = Pass(PassKind.FORWARD, 0, 2, 1, slice_index=3, num_slices=8)
    assert p.is_forward and not p.is_backward
    assert p.work_key == (0, 2, 3)
    assert "F[mb0,s2,slice3]@dev1" == p.describe()
    assert p.with_kind(PassKind.BACKWARD).is_backward
    with pytest.raises(ValueError):
        Pass(PassKind.FORWARD, -1, 0, 0)
    with pytest.raises(ValueError):
        Pass(PassKind.FORWARD, 0, 0, 0, slice_index=8, num_slices=8)
    with pytest.raises(ValueError):
        Pass(PassKind.FORWARD, 0, 0, 0, num_slices=0)


# ---------------------------------------------------------------------------
# GPipe
# ---------------------------------------------------------------------------
def test_gpipe_structure():
    sched = build_gpipe_schedule(4, 6)
    assert sched.num_stages == 4 and sched.total_passes() == 4 * 6 * 2
    assert sched.warmup_forward_counts() == [6, 6, 6, 6]
    assert sched.max_inflight_activations() == [6, 6, 6, 6]


def test_gpipe_invalid_sizes():
    with pytest.raises(ValueError):
        build_gpipe_schedule(0, 4)
    with pytest.raises(ValueError):
        build_gpipe_schedule(4, 0)


# ---------------------------------------------------------------------------
# Default 1F1B
# ---------------------------------------------------------------------------
def test_1f1b_inflight_matches_pipeline_depth():
    p, m = 4, 8
    sched = build_1f1b_schedule(p, m)
    # Device rank r accumulates p - r microbatches (Figure 4, top).
    assert sched.max_inflight_activations() == [4, 3, 2, 1]
    # Counting the steady-phase forward that precedes the first backward,
    # device rank r has run p - r forwards when its first backward starts.
    assert sched.warmup_forward_counts() == [4, 3, 2, 1]


def test_1f1b_fewer_microbatches_than_devices():
    sched = build_1f1b_schedule(8, 2)
    assert max(sched.max_inflight_activations()) == 2
    sched.validate()


def test_1f1b_first_device_alternates_after_warmup():
    sched = build_1f1b_schedule(2, 4)
    kinds = [p.kind for p in sched.passes_on_device(0)]
    assert kinds[0] is PassKind.FORWARD
    assert kinds.count(PassKind.FORWARD) == 4 and kinds.count(PassKind.BACKWARD) == 4


# ---------------------------------------------------------------------------
# Interleaved 1F1B
# ---------------------------------------------------------------------------
def test_interleaved_structure():
    p, m, v = 4, 8, 2
    sched = build_interleaved_1f1b_schedule(p, m, v)
    assert sched.num_stages == p * v
    assert sched.total_passes() == m * v * 2 * p
    mapping = sched.stage_to_device()
    assert mapping[0] == 0 and mapping[4] == 0 and mapping[5] == 1


def test_interleaved_requires_m_multiple_of_p():
    with pytest.raises(ValueError, match="multiple of the pipeline size"):
        build_interleaved_1f1b_schedule(4, 6, 2)
    # v=1 degenerates to plain 1F1B and has no such restriction.
    build_interleaved_1f1b_schedule(4, 6, 1).validate()


def test_interleaved_inflight_exceeds_plain_1f1b_in_stage_units():
    p, m, v = 4, 8, 2
    plain = build_1f1b_schedule(p, m)
    inter = build_interleaved_1f1b_schedule(p, m, v)
    # Table 2: interleaving stores 1 + (p-1)/(vp) microbatches on device 0.
    # One microbatch on a device spans v chunk-activations, so the peak in
    # chunk units is v*p + p - 1 (Megatron's warm-up of 2(p-1) + (v-1)p, +1).
    assert max(plain.max_inflight_activations()) == p
    assert max(inter.max_inflight_activations()) == v * p + p - 1


def test_interleaved_m_equals_p_special_case():
    sched = build_interleaved_1f1b_schedule(4, 4, 3)
    sched.validate()
    assert sched.warmup_forward_counts()[0] == 4 * 3


# ---------------------------------------------------------------------------
# TeraPipe
# ---------------------------------------------------------------------------
def test_terapipe_accumulates_everything():
    sched = build_terapipe_schedule(4, 2, 8)
    assert sched.num_slices == 8
    assert sched.max_inflight_activations() == [16, 16, 16, 16]


def test_terapipe_backward_order_is_reverse():
    sched = build_terapipe_schedule(2, 1, 4)
    backwards = [p for p in sched.passes_on_device(0) if p.is_backward]
    assert [p.slice_index for p in backwards] == [3, 2, 1, 0]


# ---------------------------------------------------------------------------
# Zero bubble (ZB-V / V-Half)
# ---------------------------------------------------------------------------
def test_v_shape_stage_assignment():
    assert v_shape_stage_of(0, 0, 4) == 0
    assert v_shape_stage_of(1, 0, 4) == 7
    assert v_shape_stage_of(1, 3, 4) == 4
    with pytest.raises(ValueError):
        v_shape_stage_of(2, 0, 4)


def test_zbv_structure_and_memory_cap():
    p, m = 4, 6
    sched = build_zero_bubble_v_schedule(p, m)
    assert sched.splits_backward
    assert sched.num_stages == 2 * p
    assert sched.total_passes() == m * 2 * p * 3
    assert max(sched.max_inflight_activations()) <= 2 * p
    mapping = sched.stage_to_device()
    assert mapping[0] == 0 and mapping[7] == 0 and mapping[4] == 3


def test_vhalf_uses_less_memory_than_zbv():
    p, m = 4, 8
    zbv = build_zero_bubble_v_schedule(p, m)
    vhalf = build_zero_bubble_v_schedule(p, m, half_memory=True)
    assert max(vhalf.max_inflight_activations()) <= p
    assert max(vhalf.max_inflight_activations()) <= max(zbv.max_inflight_activations())


def test_zbv_custom_durations_and_validation():
    def duration(work):
        return {"F": 1.0, "Bi": 2.0, "Bw": 0.5}[work.kind.value]

    sched = build_zero_bubble_v_schedule(3, 4, duration_fn=duration)
    sched.validate()


def test_zbv_invalid_sizes():
    with pytest.raises(ValueError):
        build_zero_bubble_v_schedule(0, 4)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def test_registry_builds_all_known_schedules():
    for name in available_schedules():
        kwargs = {}
        if name == "interleaved-1f1b":
            kwargs["num_chunks"] = 2
        sched = build_schedule(name, 4, 8, **kwargs)
        assert isinstance(sched, PipelineSchedule)
        sched.validate()


def test_registry_unknown_name():
    with pytest.raises(KeyError, match="unknown schedule"):
        build_schedule("does-not-exist", 4, 4)


# ---------------------------------------------------------------------------
# Schedule validation catches corrupted schedules
# ---------------------------------------------------------------------------
def test_validation_rejects_duplicate_and_missing_passes():
    sched = build_1f1b_schedule(2, 2)
    sched.device_orders[0].append(sched.device_orders[0][0])
    with pytest.raises(ScheduleValidationError, match="duplicate"):
        sched.validate()
    sched = build_1f1b_schedule(2, 2)
    sched.device_orders[1] = sched.device_orders[1][:-1]
    with pytest.raises(ScheduleValidationError, match="missing"):
        sched.validate()


def test_validation_rejects_backward_before_forward():
    sched = build_1f1b_schedule(2, 2)
    order = sched.device_orders[1]
    order.insert(0, order.pop())  # move last backward to the front
    with pytest.raises(ScheduleValidationError, match="before its forward"):
        sched.validate()


def test_validation_rejects_wrong_device_list():
    sched = build_1f1b_schedule(2, 2)
    sched.device_orders[0][0] = Pass(PassKind.FORWARD, 0, 1, 1)
    with pytest.raises(ScheduleValidationError):
        sched.validate()


def test_stage_to_device_conflict_detection():
    sched = build_1f1b_schedule(2, 2)
    sched.device_orders[1].append(Pass(PassKind.FORWARD, 1, 0, 1))
    with pytest.raises(ScheduleValidationError, match="devices"):
        sched.stage_to_device()


# ---------------------------------------------------------------------------
# Property: every builder yields a valid schedule
# ---------------------------------------------------------------------------
@given(p=st.integers(2, 6), m=st.integers(1, 10))
@settings(max_examples=25, deadline=None)
def test_simple_builders_always_validate(p, m):
    build_gpipe_schedule(p, m).validate()
    build_1f1b_schedule(p, m).validate()
    build_terapipe_schedule(p, m, 2 * p).validate()


@given(p=st.integers(2, 4), groups=st.integers(1, 3), v=st.integers(1, 3))
@settings(max_examples=20, deadline=None)
def test_interleaved_builder_always_validates(p, groups, v):
    build_interleaved_1f1b_schedule(p, groups * p, v).validate()


@given(p=st.integers(2, 4), m=st.integers(1, 6), half=st.booleans())
@settings(max_examples=15, deadline=None)
def test_zero_bubble_builder_always_validates(p, m, half):
    build_zero_bubble_v_schedule(p, m, half_memory=half).validate()
