"""The event recorder must be invisible: recorder-on runs are byte-identical.

Design constraint 1 of :mod:`repro.obs.events` — every emit site is guarded
by ``if obs is not None``, so attaching a recorder may never change a
simulated number.  This suite pins bit equality of every metric, timestamp
and counter between observed and unobserved runs:

* across every registered serving scenario in both deployment modes,
* across every registered fleet scenario (autoscaling, crashes, slow
  windows and heterogeneous GPUs included),

and then sanity-checks the stream itself: lifecycle bookkeeping balances
(one ARRIVE and one FINISH per finished request), tracks carry labels, the
phase profiler meters work only when asked, and the JSONL export
round-trips the stream losslessly.
"""

import json

import pytest

from repro.fleet.scenarios import FLEET_SCENARIO_REGISTRY, run_fleet_scenario
from repro.obs import events as obs_events
from repro.obs.events import EventRecorder
from repro.serving.scenarios import SCENARIO_REGISTRY, run_scenario

from test_fast_forward_equivalence import fleet_digest, serving_digest


@pytest.mark.parametrize(
    "scenario_name",
    sorted(name for name in SCENARIO_REGISTRY if not name.startswith("massive-")),
)
@pytest.mark.parametrize("mode", ["colocated", "disaggregated"])
def test_serving_scenarios_unchanged_by_recorder(scenario_name, mode):
    scenario = SCENARIO_REGISTRY[scenario_name]
    recorder = EventRecorder()
    observed = run_scenario(scenario, mode, seed=0, observe=recorder)
    plain = run_scenario(scenario, mode, seed=0)
    assert serving_digest(observed) == serving_digest(plain)
    # The run must actually have been observed, not silently skipped.
    counts = recorder.counts()
    finished = sum(1 for r in observed.records if r.finished)
    assert counts[obs_events.FINISH] == finished
    assert counts[obs_events.FIRST_TOKEN] == finished
    assert recorder.track_names  # pools registered labels


@pytest.mark.parametrize(
    "scenario_name",
    sorted(name for name in SCENARIO_REGISTRY if name.startswith("massive-")),
)
def test_massive_scenario_slices_unchanged_by_recorder(scenario_name):
    # Truncated, record-retaining slices: the full streamed runs are too big
    # to replay twice here, and the record-level digest needs records.
    scenario = SCENARIO_REGISTRY[scenario_name]
    recorder = EventRecorder()
    observed = run_scenario(
        scenario, seed=0, observe=recorder, retain_records=True, max_requests=300
    )
    plain = run_scenario(scenario, seed=0, retain_records=True, max_requests=300)
    assert serving_digest(observed) == serving_digest(plain)
    counts = recorder.counts()
    finished = sum(1 for r in observed.records if r.finished)
    assert finished > 0
    assert counts[obs_events.FINISH] == finished


@pytest.mark.parametrize("scenario_name", sorted(FLEET_SCENARIO_REGISTRY))
def test_fleet_scenarios_unchanged_by_recorder(scenario_name):
    scenario = FLEET_SCENARIO_REGISTRY[scenario_name]
    recorder = EventRecorder()
    observed = run_fleet_scenario(scenario, seed=0, observe=recorder)
    plain = run_fleet_scenario(scenario, seed=0)
    assert fleet_digest(observed) == fleet_digest(plain)
    counts = recorder.counts()
    finished = sum(1 for r in observed.records if r.finished)
    assert counts[obs_events.FINISH] == finished
    # Every request reached the cluster router exactly once.
    assert counts[obs_events.ARRIVE] == len(observed.records)
    assert any("replica" in name for name in recorder.track_names.values())


def _observed_chat(profile=False):
    recorder = EventRecorder(profile=profile)
    result = run_scenario(SCENARIO_REGISTRY["chat"], "colocated", seed=0, observe=recorder)
    return recorder, result


def test_lifecycle_bookkeeping_balances():
    recorder, result = _observed_chat()
    counts = recorder.counts()
    finished = sum(1 for r in result.records if r.finished)
    # Colocated, no preemption-free guarantee: admissions >= finishes.
    assert counts[obs_events.ARRIVE] == len(result.records)
    assert counts[obs_events.ADMIT] >= finished
    assert counts.get(obs_events.PREEMPT, 0) == result.preemptions
    # Every finished request appears in first-seen order with full lifecycle.
    assert set(recorder.requests()) == {r.request.request_id for r in result.records}
    by_request = {}
    for event in recorder.events:
        if event.request_id is not None:
            by_request.setdefault(event.request_id, []).append(event.kind)
    for record in result.records:
        if record.finished:
            kinds = by_request[record.request.request_id]
            assert kinds[0] == obs_events.ARRIVE
            assert kinds[-1] == obs_events.FINISH
            assert obs_events.FIRST_TOKEN in kinds


def test_finish_event_data_matches_record():
    recorder, result = _observed_chat()
    records = {r.request.request_id: r for r in result.records}
    for event in recorder.of_kind(obs_events.FINISH):
        record = records[event.request_id]
        ttft, tpot, output_tokens = event.data
        assert ttft == record.ttft
        assert tpot == record.tpot
        assert output_tokens == record.request.output_tokens
        assert event.time == record.finish_time


def test_events_are_time_ordered_per_track():
    # ARRIVE is backfilled at the request's queue-entry timestamp when the
    # pool next wakes, so it may trail the track's emission frontier; every
    # other kind is emitted at its own simulated moment, in order.
    recorder, _ = _observed_chat()
    last = {}
    for event in recorder.events:
        if event.kind == obs_events.ARRIVE:
            continue
        assert event.time >= last.get(event.track, 0.0)
        last[event.track] = event.time


def test_profiler_only_when_requested():
    bare, _ = _observed_chat(profile=False)
    assert bare.profiler is None
    profiled, _ = _observed_chat(profile=True)
    rows = profiled.profiler.rows()
    assert rows, "profiled run metered no phases"
    phases = {phase for phase, _, _, _ in rows}
    assert {"admission", "pricing", "fast-forward", "commit"} <= phases
    assert profiled.profiler.total_seconds() > 0.0
    # Profiling is out-of-band: the event streams are still identical.
    assert [e for e in profiled.events] == [e for e in bare.events]


def test_to_jsonl_round_trips(tmp_path):
    recorder, _ = _observed_chat()
    path = recorder.to_jsonl(str(tmp_path / "events.jsonl"))
    with open(path, encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle]
    assert len(lines) == len(recorder)
    for raw, event in zip(lines, recorder.events):
        assert raw["time"] == event.time
        assert raw["kind"] == event.kind
        assert raw["track"] == event.track
        assert raw["request_id"] == event.request_id
        restored = tuple(raw["data"]) if raw["data"] is not None else None
        assert restored == event.data


def test_fleet_unreliable_captures_failures():
    recorder = EventRecorder()
    run_fleet_scenario(FLEET_SCENARIO_REGISTRY["unreliable"], seed=0, observe=recorder)
    counts = recorder.counts()
    assert counts.get(obs_events.CRASH, 0) > 0
    assert counts.get(obs_events.RECOVER, 0) > 0
    assert counts.get(obs_events.SLOW, 0) > 0
    assert counts.get(obs_events.SLOW_END, 0) > 0


def test_fleet_flash_crowd_captures_scaling():
    recorder = EventRecorder()
    run_fleet_scenario(FLEET_SCENARIO_REGISTRY["flash-crowd"], seed=0, observe=recorder)
    counts = recorder.counts()
    assert counts.get(obs_events.SCALE, 0) > 0
    assert counts.get(obs_events.SCALE_UP, 0) > 0
    assert counts.get(obs_events.ROUTE, 0) > 0
