"""Window alignment and empty-window gap handling of the time series.

Satellite of the diagnosis layer: detectors assume a *uniform* window axis
— every interval row between the first and last observed window exists,
with zero-sample windows rendered as explicit gaps (count 0, ``None``
statistics for metrics; zero counts for counters) rather than silently
dropped.  Windows are anchored at t=0 via ``int(time // window)`` for every
stream, so the serving engines' track clocks and the fleet's cluster clock
land in identical buckets for identical timestamps.
"""

from repro.obs import EventRecorder, build_timeseries
from repro.obs.events import CLUSTER_TRACK, Event
from repro.obs.events import ARRIVE, FIRST_TOKEN
from repro.obs.timeseries import MetricSeries, WindowedCounter


class TestMetricSeriesGaps:
    def test_zero_sample_windows_are_explicit_gaps(self):
        series = MetricSeries("ttft", 5.0)
        series.add(1.0, 0.5)
        series.add(17.0, 1.0)
        rows = series.intervals()
        assert [(row["start"], row["end"]) for row in rows] == [
            (0.0, 5.0),
            (5.0, 10.0),
            (10.0, 15.0),
            (15.0, 20.0),
        ]
        assert rows[0]["mean"] == 0.5 and rows[0]["count"] == 1
        for gap in rows[1:3]:
            assert gap["count"] == 0
            assert gap["mean"] is None
            assert gap["min"] is None
            assert gap["max"] is None
        assert rows[3]["mean"] == 1.0

    def test_no_samples_means_no_rows(self):
        assert MetricSeries("ttft", 5.0).intervals() == []


class TestCounterGaps:
    def test_zero_event_windows_count_zero(self):
        counter = WindowedCounter("arrivals", 5.0)
        counter.add(1.0)
        counter.add(17.0, amount=2.0)
        rows = counter.intervals()
        assert [row["count"] for row in rows] == [1.0, 0.0, 0.0, 2.0]
        assert [row["per_second"] for row in rows] == [0.2, 0.0, 0.0, 0.4]
        assert [(row["start"], row["end"]) for row in rows] == [
            (0.0, 5.0),
            (5.0, 10.0),
            (10.0, 15.0),
            (15.0, 20.0),
        ]
        assert counter.total == 3.0


def test_serving_and_fleet_clocks_share_the_window_axis():
    # One synthetic stream with an engine-track event and a cluster-track
    # event at the same timestamps: both must fold into the same buckets
    # (anchored at t=0), and the sparse middle stays an explicit gap row.
    recorder = EventRecorder()
    for time in (1.0, 17.0):
        recorder.events.append(Event(time, ARRIVE, 0, 1, None))
        recorder.events.append(Event(time, ARRIVE, CLUSTER_TRACK, 2, None))
        recorder.events.append(Event(time, FIRST_TOKEN, 0, 1, (0.25,)))
    series = build_timeseries(recorder, window=5.0)
    arrivals = series.counters["arrivals"].intervals()
    ttft = series.metrics["ttft"].intervals()
    # Track-0 and cluster-track arrivals land in one shared counter/bucket.
    assert [row["count"] for row in arrivals] == [2.0, 0.0, 0.0, 2.0]
    assert [(row["start"], row["end"]) for row in arrivals] == [
        (row["start"], row["end"]) for row in ttft
    ]
    assert [row["mean"] for row in ttft] == [0.25, None, None, 0.25]
