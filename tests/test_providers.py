"""Tests for the model-driven cost and memory providers (repro.sim.providers)."""

import pytest

from repro.constants import GIB
from repro.core.schedule import build_slimpipe_schedule
from repro.hardware.topology import hopper_cluster
from repro.model.config import LLAMA_13B
from repro.model.costs import PassKind
from repro.model.memory import RecomputeMode, logits_bytes_per_token
from repro.parallel.config import ParallelConfig
from repro.schedules import build_1f1b_schedule
from repro.schedules.base import Pass
from repro.sim.engine import SimulationEngine
from repro.sim.memory_tracker import MemoryTracker
from repro.sim.providers import (
    ModelActivationAccountant,
    ModelCostProvider,
    PipelineModelSpec,
    spec_for_schedule,
)


@pytest.fixture()
def cluster():
    return hopper_cluster(32)


@pytest.fixture()
def parallel():
    return ParallelConfig(
        tensor_parallel_size=8, pipeline_parallel_size=4, num_slices=8
    )


def make_spec(parallel, **kwargs) -> PipelineModelSpec:
    defaults = dict(
        model=LLAMA_13B,
        parallel=parallel,
        sequence_length=32 * 1024,
        num_stages=4,
        num_slices=8,
    )
    defaults.update(kwargs)
    return PipelineModelSpec(**defaults)


def fwd(stage: int, slice_index: int, device: int = 0, num_slices: int = 8) -> Pass:
    return Pass(PassKind.FORWARD, 0, stage, device, slice_index, num_slices)


def bwd(stage: int, slice_index: int, device: int = 0, num_slices: int = 8) -> Pass:
    return Pass(PassKind.BACKWARD, 0, stage, device, slice_index, num_slices)


class TestPipelineModelSpec:
    def test_layers_per_stage(self, parallel):
        spec = make_spec(parallel)
        assert spec.layers_per_stage == 10

    def test_layers_must_divide(self, parallel):
        with pytest.raises(ValueError):
            make_spec(parallel, num_stages=3)

    def test_device_sequence_length_divides_by_cp(self):
        parallel = ParallelConfig(
            tensor_parallel_size=4,
            context_parallel_size=2,
            pipeline_parallel_size=4,
            num_slices=8,
        )
        spec = make_spec(parallel)
        assert spec.device_sequence_length == 16 * 1024

    def test_slice_of_unsliced_pass_covers_sequence(self, parallel):
        spec = make_spec(parallel)
        whole = spec.slice_of(Pass(PassKind.FORWARD, 0, 0, 0))
        assert whole.length == spec.device_sequence_length

    def test_vocab_shards(self, parallel):
        assert make_spec(parallel, vocab_parallel=True).vocab_shards == 4
        assert make_spec(parallel).vocab_shards == 1

    def test_spec_for_schedule_matches_shape(self, parallel):
        schedule = build_slimpipe_schedule(4, 2, 8)
        spec = spec_for_schedule(schedule, LLAMA_13B, parallel, 32 * 1024)
        assert spec.num_stages == schedule.num_stages
        assert spec.num_slices == schedule.num_slices

    def test_exposed_fraction_validated(self, parallel):
        with pytest.raises(ValueError):
            make_spec(parallel, exchange_exposed_fraction=1.5)


class TestModelCostProvider:
    def test_later_slices_cost_more_without_exchange(self, parallel, cluster):
        spec = make_spec(parallel, context_exchange=False)
        costs = ModelCostProvider(spec, cluster)
        early = costs.duration(fwd(1, 0))
        late = costs.duration(fwd(1, 7))
        assert late > early * 1.5

    def test_exchange_equalises_slice_costs(self, parallel, cluster):
        spec = make_spec(parallel, context_exchange=True)
        costs = ModelCostProvider(spec, cluster)
        durations = [costs.duration(fwd(1, s)) for s in range(8)]
        assert max(durations) / min(durations) < 1.01

    def test_exchange_conserves_total_attention_time(self, parallel, cluster):
        plain = ModelCostProvider(make_spec(parallel, context_exchange=False), cluster)
        balanced = ModelCostProvider(make_spec(parallel, context_exchange=True), cluster)
        total_plain = sum(plain.duration(fwd(1, s)) for s in range(8))
        total_balanced = sum(balanced.duration(fwd(1, s)) for s in range(8))
        assert total_balanced == pytest.approx(total_plain, rel=0.02)

    def test_backward_costs_more_than_forward(self, parallel, cluster):
        costs = ModelCostProvider(make_spec(parallel), cluster)
        assert costs.duration(bwd(1, 3)) > costs.duration(fwd(1, 3))

    def test_last_stage_includes_output_layer(self, parallel, cluster):
        costs = ModelCostProvider(make_spec(parallel), cluster)
        # The vocabulary GEMM adds roughly 2*h*V/(per-layer FLOPs * L/p) ~ 20%
        # for Llama 13B with 10 layers per stage.
        assert costs.duration(fwd(3, 0)) > costs.duration(fwd(1, 0)) * 1.1

    def test_vocab_parallel_shrinks_last_stage(self, parallel, cluster):
        classic = ModelCostProvider(make_spec(parallel, vocab_parallel=False), cluster)
        shared = ModelCostProvider(make_spec(parallel, vocab_parallel=True), cluster)
        assert shared.duration(fwd(3, 0)) < classic.duration(fwd(3, 0))

    def test_full_recompute_adds_backward_time(self, parallel, cluster):
        plain = ModelCostProvider(make_spec(parallel), cluster)
        recompute = ModelCostProvider(
            make_spec(parallel, recompute=RecomputeMode.FULL), cluster
        )
        assert recompute.duration(bwd(1, 3)) > plain.duration(bwd(1, 3))
        # Forward passes are unaffected.
        assert recompute.duration(fwd(1, 3)) == pytest.approx(plain.duration(fwd(1, 3)))

    def test_selective_recompute_between_none_and_full(self, parallel, cluster):
        none = ModelCostProvider(make_spec(parallel), cluster).duration(bwd(1, 3))
        selective = ModelCostProvider(
            make_spec(parallel, recompute=RecomputeMode.SELECTIVE), cluster
        ).duration(bwd(1, 3))
        full = ModelCostProvider(
            make_spec(parallel, recompute=RecomputeMode.FULL), cluster
        ).duration(bwd(1, 3))
        assert none < selective < full

    def test_comm_delay_zero_on_same_device(self, parallel, cluster):
        costs = ModelCostProvider(make_spec(parallel), cluster)
        assert costs.comm_delay(fwd(1, 0, device=2), fwd(2, 0, device=2)) == 0.0

    def test_comm_delay_positive_across_devices(self, parallel, cluster):
        costs = ModelCostProvider(make_spec(parallel), cluster)
        delay = costs.comm_delay(fwd(1, 0, device=1), fwd(2, 0, device=2))
        assert delay > 0.0

    def test_exposed_exchange_adds_time_when_not_overlapped(self, parallel, cluster):
        overlapped = ModelCostProvider(
            make_spec(parallel, context_exchange=True, exchange_exposed_fraction=0.0),
            cluster,
        )
        exposed = ModelCostProvider(
            make_spec(parallel, context_exchange=True, exchange_exposed_fraction=1.0),
            cluster,
        )
        assert exposed.duration(fwd(1, 3)) > overlapped.duration(fwd(1, 3))

    def test_durations_positive_for_all_kinds(self, parallel, cluster):
        costs = ModelCostProvider(make_spec(parallel), cluster)
        for kind in PassKind:
            work = Pass(kind, 0, 1, 0, 3, 8)
            assert costs.duration(work) > 0.0


class TestModelActivationAccountant:
    def test_stored_scales_with_slice_length(self, parallel, cluster):
        acct = ModelActivationAccountant(make_spec(parallel), cluster)
        # All slices are uniform here, so use two specs with different n.
        small = ModelActivationAccountant(
            make_spec(parallel.with_slices(16), num_slices=16), cluster
        )
        assert acct.stored_bytes(fwd(1, 0)) == pytest.approx(
            2 * small.stored_bytes(fwd(1, 0, num_slices=16)), rel=1e-6
        )

    def test_backward_stores_nothing(self, parallel, cluster):
        acct = ModelActivationAccountant(make_spec(parallel), cluster)
        assert acct.stored_bytes(bwd(1, 0)) == 0.0

    def test_last_stage_adds_logits(self, parallel, cluster):
        spec = make_spec(parallel)
        acct = ModelActivationAccountant(spec, cluster)
        slice_tokens = spec.slices()[0].length
        expected_logits = slice_tokens * logits_bytes_per_token(
            LLAMA_13B, tensor_parallel_size=8, vocab_parallel_size=1
        )
        delta = acct.stored_bytes(fwd(3, 0)) - acct.stored_bytes(fwd(1, 0))
        assert delta == pytest.approx(expected_logits)

    def test_vocab_parallel_divides_logits(self, parallel, cluster):
        classic = ModelActivationAccountant(make_spec(parallel), cluster)
        shared = ModelActivationAccountant(make_spec(parallel, vocab_parallel=True), cluster)
        classic_logits = classic.stored_bytes(fwd(3, 0)) - classic.stored_bytes(fwd(1, 0))
        shared_logits = shared.stored_bytes(fwd(3, 0)) - shared.stored_bytes(fwd(1, 0))
        assert shared_logits == pytest.approx(classic_logits / 4)

    def test_full_recompute_stores_less_than_none(self, parallel, cluster):
        none = ModelActivationAccountant(make_spec(parallel), cluster)
        full = ModelActivationAccountant(
            make_spec(parallel, recompute=RecomputeMode.FULL), cluster
        )
        assert full.stored_bytes(fwd(1, 0)) < none.stored_bytes(fwd(1, 0))

    def test_full_recompute_has_transient_working_set(self, parallel, cluster):
        full = ModelActivationAccountant(
            make_spec(parallel, recompute=RecomputeMode.FULL), cluster
        )
        assert full.transient_bytes(bwd(1, 0)) > 0.0
        assert full.transient_bytes(fwd(1, 0)) == 0.0

    def test_base_bytes_positive_and_include_model_states(self, parallel, cluster):
        acct = ModelActivationAccountant(make_spec(parallel), cluster)
        bare = ModelActivationAccountant(
            make_spec(parallel), cluster, include_model_states=False
        )
        assert acct.base_bytes(0) > GIB
        assert bare.base_bytes(0) == 0.0


class TestEndToEndWithTracker:
    def test_slimpipe_uses_less_activation_memory_than_1f1b(self, parallel, cluster):
        """Integration: full pipeline memory comparison, SlimPipe vs default 1F1B."""
        seq = 32 * 1024
        slim_schedule = build_slimpipe_schedule(4, 4, 8)
        slim_spec = spec_for_schedule(slim_schedule, LLAMA_13B, parallel, seq)
        slim_peak = max(
            MemoryTracker(
                slim_schedule,
                ModelActivationAccountant(slim_spec, cluster, include_model_states=False),
            ).peak_activation_bytes()
        )

        base_parallel = ParallelConfig(tensor_parallel_size=8, pipeline_parallel_size=4)
        base_schedule = build_1f1b_schedule(4, 4)
        base_spec = spec_for_schedule(base_schedule, LLAMA_13B, base_parallel, seq)
        base_peak = max(
            MemoryTracker(
                base_schedule,
                ModelActivationAccountant(base_spec, cluster, include_model_states=False),
            ).peak_activation_bytes()
        )
        # Eq. 1: default 1F1B accumulates p microbatches of M_a/p = M_a per
        # device, while SlimPipe accumulates (1 + 2(p-1)/n) * M_a/p = 0.4375 M_a
        # here, so the expected ratio is p / (1 + 2(p-1)/n) ~ 2.3.
        expected_ratio = 4 / (1 + 2 * 3 / 8)
        assert slim_peak < base_peak / 2
        assert base_peak / slim_peak == pytest.approx(expected_ratio, rel=0.05)

    def test_simulated_iteration_runs(self, parallel, cluster):
        schedule = build_slimpipe_schedule(4, 2, 8)
        spec = spec_for_schedule(
            schedule, LLAMA_13B, parallel, 32 * 1024, context_exchange=True, vocab_parallel=True
        )
        costs = ModelCostProvider(spec, cluster)
        timeline = SimulationEngine(schedule, costs).run()
        assert timeline.makespan > 0.0
        assert 0.0 <= timeline.bubble_fraction() < 0.5
