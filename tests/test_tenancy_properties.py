"""Property-tested fairness invariants of the multi-tenant QoS layer.

The tenancy layer (``repro.serving.tenancy`` + the batcher's ``fair``
policy) makes strong promises; this suite pins each one as an executable
invariant:

* **starvation-freedom** — under fair scheduling every request of every
  tenant finishes, whatever the trace shape, and per-tenant request counts
  are conserved end to end;
* **fair-share isolation** — every fair admission picks a tenant whose
  virtual-token counter is minimal among the bucket-ready waiting tenants
  (the virtual-token-counter invariant that bounds any tenant's lag);
* **token buckets never over-admit** — granted work over any horizon is
  bounded by ``capacity + rate * T`` (plus at most one oversized request's
  debt, which must refill before the next grant);
* **single-tenant neutrality** — with one tenant (or none) the fair policy
  is *byte-identical* to FCFS: same records, same timestamps, same
  timeline spans;
* **tenancy present-but-unconfigured is invisible** — attaching an empty
  ``TenancyConfig`` to a pre-tenancy scenario changes nothing, bit for bit;
* **fast-forward exactness survives fair scheduling** — the coalesced
  decode path stays byte-identical to the naive stepper on multi-tenant
  traces (the tenant scenarios themselves are additionally pinned in
  ``test_fast_forward_equivalence.py``);
* **streaming per-tenant aggregates are exact** — the bounded-memory
  ``StreamingMetrics`` path reports the same per-tenant counters as the
  record-based path, massive-scenario slices included;
* **per-tenant conservation at fleet scale** — routers x fair scheduling x
  crash storms lose and duplicate nothing, per tenant;
* and the headline **noisy-neighbour acceptance**: fair scheduling keeps
  the interactive tenant's TTFT p99 inside its SLO while the batch tenant
  backfills >= 50% of the throughput it achieves running alone (FCFS, by
  contrast, misses the interactive SLO outright).
"""

from dataclasses import asdict, replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.cluster import FleetConfig, FleetEngine
from repro.fleet.failures import FailureEvent, FailurePlan
from repro.model.config import get_model_config
from repro.serving.batcher import BatcherConfig, ContinuousBatcher
from repro.serving.engine import ServingConfig, ServingEngine
from repro.serving.metrics import SLO
from repro.serving.scenarios import SCENARIO_REGISTRY, get_scenario, run_scenario
from repro.serving.tenancy import (
    TenancyConfig,
    TenantSpec,
    TokenBucket,
    get_slo_class,
)
from repro.serving.workload import merge_traces, poisson_trace, replay_trace

LLAMA_13B = get_model_config("llama-13b")


def serving_digest(result):
    """Everything a ServingResult observed, as one comparable value."""
    return {
        "mode": result.mode,
        "metrics": asdict(result.metrics),
        "tenant_metrics": {k: asdict(v) for k, v in result.tenant_metrics.items()},
        "records": [
            (r.request.request_id, r.first_token_time, r.finish_time, r.preemptions)
            for r in result.records
        ],
        "iterations": result.iterations,
        "tokens_admitted": result.tokens_admitted,
        "tokens_prefilled": result.tokens_prefilled,
        "tokens_preempted_requeued": result.tokens_preempted_requeued,
        "preemptions": result.preemptions,
        "spans": [(s.device, s.start, s.end) for s in result.timeline.spans],
    }


def _config(policy="fair", tenancy=None, fast_forward=True):
    return ServingConfig(
        num_gpus=1,
        batcher=BatcherConfig(
            max_batch_tokens=4096, prefill_chunk_tokens=2048, policy=policy
        ),
        tenancy=tenancy,
        fast_forward=fast_forward,
    )


def _two_tenant_trace(triples_a, triples_b):
    return merge_traces(
        replay_trace(sorted(triples_a), tenant="acme"),
        replay_trace(sorted(triples_b), tenant="zeta"),
    )


_triples = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
        st.integers(min_value=1, max_value=6000),
        st.integers(min_value=1, max_value=400),
    ),
    min_size=1,
    max_size=10,
)


# ---------------------------------------------------------------------------
# Token buckets never over-admit
# ---------------------------------------------------------------------------
class TestTokenBucket:
    @settings(max_examples=50, deadline=None)
    @given(
        capacity=st.floats(min_value=10.0, max_value=10_000.0, allow_nan=False),
        rate=st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
        arrivals=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        ),
    )
    def test_never_over_admits_within_capacity(self, capacity, rate, arrivals):
        """Requests no larger than the bucket: granted <= capacity + rate*T."""
        bucket = TokenBucket(capacity=capacity, refill_rate=rate)
        granted, now = 0.0, 0.0
        for gap, frac in arrivals:
            now += gap
            tokens = max(1, int(frac * capacity))
            if bucket.admit(now, tokens):
                granted += tokens
        assert granted <= capacity + rate * now + 1e-6

    @settings(max_examples=50, deadline=None)
    @given(
        capacity=st.floats(min_value=10.0, max_value=1000.0, allow_nan=False),
        rate=st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
        oversize=st.integers(min_value=1, max_value=100_000),
        gaps=st.lists(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
    )
    def test_oversized_requests_pay_their_debt(self, capacity, rate, oversize, gaps):
        """Arbitrary sizes: the bound loosens by at most one request's debt."""
        bucket = TokenBucket(capacity=capacity, refill_rate=rate)
        granted, now, largest = 0.0, 0.0, 0.0
        for gap in gaps:
            now += gap
            if bucket.admit(now, oversize):
                granted += oversize
                largest = max(largest, float(oversize))
        debt = max(0.0, largest - capacity)
        assert granted <= capacity + rate * now + debt + 1e-6

    def test_oversized_needs_full_bucket_again(self):
        bucket = TokenBucket(capacity=100.0, refill_rate=10.0)
        assert bucket.admit(0.0, 1000)  # full bucket grants the giant once
        # In debt (-900): the next grant needs the bucket back at capacity,
        # i.e. 100 seconds of refill, not just back above zero.
        assert not bucket.admit(50.0, 1000)
        assert bucket.ready_time(50.0, 1000) == pytest.approx(100.0)
        assert bucket.admit(100.0, 1000)

    @settings(max_examples=30, deadline=None)
    @given(
        now=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        tokens=st.integers(min_value=1, max_value=5000),
    )
    def test_ready_time_is_consistent_with_admit(self, now, tokens):
        """admit() succeeds exactly from ready_time() onward."""
        bucket = TokenBucket(capacity=1000.0, refill_rate=50.0)
        bucket.admit(0.0, 900)  # drain most of the bucket first
        ready = bucket.ready_time(now, tokens)
        assert ready >= now
        if ready > now + 1e-9:
            probe = TokenBucket(capacity=1000.0, refill_rate=50.0)
            probe.admit(0.0, 900)
            assert not probe.admit(now, tokens)
        probe = TokenBucket(capacity=1000.0, refill_rate=50.0)
        probe.admit(0.0, 900)
        assert probe.admit(ready + 1e-6, tokens)


# ---------------------------------------------------------------------------
# Starvation-freedom and per-tenant conservation under fair scheduling
# ---------------------------------------------------------------------------
class TestStarvationFreedom:
    @settings(max_examples=15, deadline=None)
    @given(triples_a=_triples, triples_b=_triples)
    def test_every_tenant_finishes_everything(self, triples_a, triples_b):
        trace = _two_tenant_trace(triples_a, triples_b)
        tenancy = TenancyConfig.of(
            TenantSpec("acme", weight=3.0), TenantSpec("zeta", weight=1.0)
        )
        result = ServingEngine(LLAMA_13B, _config(tenancy=tenancy)).run(trace, SLO())
        assert result.metrics.num_requests == len(trace)
        for record in result.records:
            assert record.finished
            assert record.first_token_time is not None
            assert record.finish_time >= record.first_token_time
        # Per-tenant conservation: the aggregates partition the trace.
        expected = {"acme": len(triples_a), "zeta": len(triples_b)}
        got = {k: v.num_requests for k, v in result.tenant_metrics.items()}
        assert got == expected
        assert sum(m.output_tokens for m in result.tenant_metrics.values()) == sum(
            r.output_tokens for r in trace
        )


# ---------------------------------------------------------------------------
# Fair-share isolation: the virtual-token-counter admission invariant
# ---------------------------------------------------------------------------
def test_fair_admission_always_picks_minimal_virtual_counter():
    """Every fair admission chooses a tenant with the least virtual time.

    This is the invariant that bounds any backlogged tenant's service lag:
    a tenant can never be passed over in favour of one that has already
    consumed more weighted work.  Checked on every single admission of the
    saturating noisy-neighbour trace via an instrumented selection hook.
    """
    observed = {"admissions": 0}
    orig = ContinuousBatcher._select_admission_index

    def spy(self):
        index = orig(self)
        if index is not None and self.config.policy == "fair":
            chosen = self.waiting[index]
            chosen_counter = self._virtual_tokens.get(chosen.request.tenant, 0.0)
            for state in self.waiting:
                if self._bucket_ready(state):
                    other = self._virtual_tokens.get(state.request.tenant, 0.0)
                    assert chosen_counter <= other + 1e-9
            observed["admissions"] += 1
        return index

    ContinuousBatcher._select_admission_index = spy
    try:
        run_scenario(get_scenario("noisy-neighbour"))
    finally:
        ContinuousBatcher._select_admission_index = orig
    assert observed["admissions"] >= 140  # every request admitted at least once


# ---------------------------------------------------------------------------
# Single-tenant neutrality: fair == FCFS, byte for byte
# ---------------------------------------------------------------------------
class TestSingleTenantNeutrality:
    @settings(max_examples=10, deadline=None)
    @given(triples=_triples, tagged=st.booleans())
    def test_fair_is_fcfs_with_one_tenant(self, triples, tagged):
        trace = replay_trace(sorted(triples), tenant="solo" if tagged else None)
        fair = ServingEngine(LLAMA_13B, _config("fair")).run(trace, SLO())
        fcfs = ServingEngine(LLAMA_13B, _config("fcfs")).run(trace, SLO())
        assert serving_digest(fair) == serving_digest(fcfs)

    def test_fair_is_fcfs_under_preemption_pressure(self):
        # Oversubscribe the 1-GPU KV pool so preempted requests re-queue:
        # the appendleft'd victims must keep their head-of-line claim under
        # the fair key exactly as they do under FCFS.
        trace = replay_trace([(0.0, 4096, 2048) for _ in range(12)], tenant="solo")
        fair = ServingEngine(LLAMA_13B, _config("fair")).run(trace, SLO())
        fcfs = ServingEngine(LLAMA_13B, _config("fcfs")).run(trace, SLO())
        assert fair.preemptions > 0
        assert serving_digest(fair) == serving_digest(fcfs)


# ---------------------------------------------------------------------------
# Tenancy present-but-unconfigured is invisible (the regression satellite)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "scenario_name", ["chat", "bursty-long", "shared-system-prompt"]
)
def test_empty_tenancy_config_is_byte_invisible(scenario_name):
    """An empty TenancyConfig on a pre-tenancy scenario changes nothing."""
    scenario = get_scenario(scenario_name)
    baseline = run_scenario(scenario, seed=0)
    with_tenancy = run_scenario(
        replace(scenario, tenancy=TenancyConfig()), seed=0
    )
    assert serving_digest(with_tenancy) == serving_digest(baseline)


def test_tenant_tags_alone_do_not_change_scheduling():
    """Tagged requests under FCFS without tenancy: metrics only, no behaviour."""
    plain = replay_trace([(0.1 * i, 512 + 64 * i, 32) for i in range(20)])
    tagged = replay_trace(
        [(0.1 * i, 512 + 64 * i, 32) for i in range(20)], tenant="acme"
    )
    base = ServingEngine(LLAMA_13B, _config("fcfs")).run(plain, SLO())
    run = ServingEngine(LLAMA_13B, _config("fcfs")).run(tagged, SLO())
    base_digest, run_digest = serving_digest(base), serving_digest(run)
    assert run_digest.pop("tenant_metrics").keys() == {"acme"}
    assert base_digest.pop("tenant_metrics") == {}
    assert run_digest == base_digest


# ---------------------------------------------------------------------------
# Fast-forward exactness survives fair scheduling
# ---------------------------------------------------------------------------
class TestFastForwardUnderFair:
    @settings(max_examples=10, deadline=None)
    @given(triples_a=_triples, triples_b=_triples)
    def test_fast_forward_byte_identical_multi_tenant(self, triples_a, triples_b):
        trace = _two_tenant_trace(triples_a, triples_b)
        tenancy = TenancyConfig.of(
            TenantSpec("acme", slo_class=get_slo_class("interactive"), weight=2.0),
            TenantSpec("zeta", slo_class=get_slo_class("batch")),
        )
        fast = ServingEngine(LLAMA_13B, _config(tenancy=tenancy)).run(trace, SLO())
        naive = ServingEngine(
            LLAMA_13B, _config(tenancy=tenancy, fast_forward=False)
        ).run(trace, SLO())
        assert serving_digest(fast) == serving_digest(naive)


# ---------------------------------------------------------------------------
# Streaming per-tenant aggregates match the record-based path exactly
# ---------------------------------------------------------------------------
_TENANT_COUNTER_FIELDS = (
    "num_requests",
    "output_tokens",
    "good_requests",
    "goodput_fraction",
    "goodput_rps",
)


def _tenant_counters(result):
    return {
        name: {f: getattr(m, f) for f in _TENANT_COUNTER_FIELDS}
        for name, m in result.tenant_metrics.items()
    }


class TestStreamingTenantAggregates:
    @settings(max_examples=10, deadline=None)
    @given(triples_a=_triples, triples_b=_triples)
    def test_streaming_counters_match_record_based(self, triples_a, triples_b):
        trace = _two_tenant_trace(triples_a, triples_b)
        tenancy = TenancyConfig.of(TenantSpec("acme"), TenantSpec("zeta"))

        def run(retain):
            config = replace(_config(tenancy=tenancy), retain_records=retain)
            return ServingEngine(LLAMA_13B, config).run(list(trace), SLO())

        retained, streamed = run(True), run(False)
        assert streamed.records == []
        assert _tenant_counters(streamed) == _tenant_counters(retained)
        assert set(streamed.tenant_metrics) == set(retained.tenant_metrics)
        for name, m in streamed.tenant_metrics.items():
            assert m.slo == retained.tenant_metrics[name].slo

    def test_streaming_percentiles_exact_at_small_n(self):
        # <= 5 samples per tenant: the P-squared sketches buffer raw values,
        # so even the percentile fields agree bit for bit.
        trace = _two_tenant_trace(
            [(0.0, 512, 8), (0.5, 256, 16)], [(0.2, 1024, 4), (0.9, 128, 32)]
        )
        tenancy = TenancyConfig.of(TenantSpec("acme"), TenantSpec("zeta"))

        def run(retain):
            config = replace(_config(tenancy=tenancy), retain_records=retain)
            return ServingEngine(LLAMA_13B, config).run(list(trace), SLO())

        retained, streamed = run(True), run(False)
        assert {k: asdict(v) for k, v in streamed.tenant_metrics.items()} == {
            k: asdict(v) for k, v in retained.tenant_metrics.items()
        }

    @pytest.mark.parametrize(
        "scenario_name",
        sorted(name for name in SCENARIO_REGISTRY if name.startswith("massive-")),
    )
    def test_massive_slices_agree_and_stay_untagged(self, scenario_name):
        scenario = SCENARIO_REGISTRY[scenario_name]
        retained = run_scenario(
            scenario, seed=0, retain_records=True, max_requests=300
        )
        streamed = run_scenario(
            scenario, seed=0, retain_records=False, max_requests=300
        )
        # Untagged workloads report no tenants in either path ...
        assert retained.tenant_metrics == {} and streamed.tenant_metrics == {}
        # ... and the exact counter metrics agree as before.
        assert streamed.metrics.num_requests == retained.metrics.num_requests
        assert streamed.metrics.goodput_fraction == retained.metrics.goodput_fraction
        assert streamed.iterations == retained.iterations


# ---------------------------------------------------------------------------
# Per-tenant conservation at fleet scale (routers x fair x crash storms)
# ---------------------------------------------------------------------------
_failure_events = st.lists(
    st.builds(
        FailureEvent,
        time=st.floats(min_value=0.05, max_value=4.0, allow_nan=False),
        kind=st.sampled_from(["crash", "slow"]),
        replica_index=st.integers(min_value=0, max_value=3),
        duration=st.floats(min_value=0.2, max_value=2.0, allow_nan=False),
        slowdown=st.just(2.0),
    ),
    max_size=3,
)


@settings(max_examples=8, deadline=None)
@given(
    router=st.sampled_from(
        ["round-robin", "least-tokens", "session-affinity", "kv-aware"]
    ),
    seed=st.integers(min_value=0, max_value=2**20),
    per_tenant=st.integers(min_value=3, max_value=8),
    events=_failure_events,
)
def test_fleet_per_tenant_conservation_under_failures(
    router, seed, per_tenant, events
):
    """No router loses or duplicates any tenant's requests, crashes included."""
    trace = merge_traces(
        poisson_trace(
            num_requests=per_tenant,
            arrival_rate=4.0,
            prompt_mean=512,
            output_mean=24,
            seed=seed,
            tenant="acme",
        ),
        poisson_trace(
            num_requests=per_tenant,
            arrival_rate=2.0,
            prompt_mean=1024,
            output_mean=16,
            seed=seed + 1,
            tenant="zeta",
        ),
    )
    config = FleetConfig(
        gpus_per_replica=1,
        initial_replicas=2,
        max_replicas=4,
        sessions=4,
        batcher=BatcherConfig(policy="fair"),
        tenancy=TenancyConfig.of(
            TenantSpec("acme", slo_class=get_slo_class("interactive"), weight=2.0),
            TenantSpec("zeta", slo_class=get_slo_class("batch")),
        ),
    )
    engine = FleetEngine(
        get_model_config("llama-13b"),
        config,
        router=router,
        failure_plan=FailurePlan(events=tuple(events)),
    )
    result = engine.run(trace)
    assert result.metrics.num_requests == len(trace)
    assert all(record.finished for record in result.records)
    assert result.token_accounting_balanced
    counts = {k: v.num_requests for k, v in result.tenant_metrics.items()}
    assert counts == {"acme": per_tenant, "zeta": per_tenant}
    # Each tenant is judged against its own SLO class.
    assert result.tenant_metrics["acme"].slo == get_slo_class("interactive").slo
    assert result.tenant_metrics["zeta"].slo == get_slo_class("batch").slo


def test_fleet_rejects_rate_limited_tenants():
    """Per-replica buckets would multiply the global rate: rejected up front."""
    with pytest.raises(ValueError, match="rate_limit"):
        FleetConfig(
            tenancy=TenancyConfig.of(
                TenantSpec("mob", rate_limit=100.0, burst_tokens=200.0)
            )
        )


# ---------------------------------------------------------------------------
# The headline acceptance: noisy neighbour contained, capacity backfilled
# ---------------------------------------------------------------------------
class TestNoisyNeighbourAcceptance:
    def test_interactive_slo_held_while_batch_backfills(self):
        scenario = get_scenario("noisy-neighbour")
        shared = run_scenario(scenario, seed=0)
        acme = shared.tenant_metrics["acme"]
        crunch = shared.tenant_metrics["crunch"]
        # The interactive tenant's tail stays inside its SLO class bound.
        assert acme.ttft_p99 <= acme.slo.ttft
        assert acme.goodput_fraction == 1.0
        # The batch tenant backfills >= 50% of its stand-alone throughput
        # (residual capacity is not wasted to protect the interactive SLO).
        solo_scenario = replace(
            scenario,
            trace_factory=lambda seed: [
                r for r in scenario.make_trace(seed) if r.tenant == "crunch"
            ],
        )
        solo = run_scenario(solo_scenario, seed=0)
        shared_tput = crunch.output_tokens / shared.metrics.duration
        solo_tput = solo.tenant_metrics["crunch"].output_tokens / solo.metrics.duration
        assert crunch.output_tokens == solo.tenant_metrics["crunch"].output_tokens
        assert shared_tput >= 0.5 * solo_tput

    def test_fcfs_misses_what_fair_holds(self):
        """The A/B that motivates the fair scheduler, pinned as a test."""
        scenario = get_scenario("noisy-neighbour")
        fair = run_scenario(scenario, seed=0).tenant_metrics["acme"]
        fcfs = run_scenario(scenario, seed=0, policy="fcfs").tenant_metrics["acme"]
        assert fair.ttft_p99 <= fair.slo.ttft
        assert fcfs.ttft_p99 > fcfs.slo.ttft
        assert fair.goodput_fraction > fcfs.goodput_fraction
