"""Tests for vocabulary parallelism accounting (Section 4.3, Figure 9)."""

import pytest

from repro.core.vocab_parallel import VocabParallelConfig, output_layer_costs
from repro.hardware.comm import CommModel
from repro.hardware.topology import hopper_cluster
from repro.model.config import LLAMA_13B
from repro.model.costs import CostModel, PassKind


@pytest.fixture()
def cluster():
    return hopper_cluster(32)


@pytest.fixture()
def comm(cluster):
    return CommModel(cluster)


@pytest.fixture()
def cost_model(cluster):
    return CostModel(cluster.gpu)


class TestVocabParallelConfig:
    def test_shards(self):
        assert VocabParallelConfig(True, 8).vocab_shards == 8
        assert VocabParallelConfig(False, 8).vocab_shards == 1

    def test_devices_holding_output(self):
        assert VocabParallelConfig(True, 8).devices_holding_output() == 8
        assert VocabParallelConfig(False, 8).devices_holding_output() == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            VocabParallelConfig(True, 0)
        with pytest.raises(ValueError):
            VocabParallelConfig(True, 4, tensor_parallel_size=0)


class TestOutputLayerCosts:
    def test_compute_divided_by_pipeline_size(self, cost_model, comm, cluster):
        tokens = 8192
        classic = output_layer_costs(
            LLAMA_13B, tokens, VocabParallelConfig(False, 8), cost_model
        )
        domain = comm.pipeline_domain(8, 8)
        parallel = output_layer_costs(
            LLAMA_13B,
            tokens,
            VocabParallelConfig(True, 8),
            cost_model,
            comm_model=comm,
            pipeline_domain=domain,
        )
        # The GEMM shrinks ~8x (modulo fixed launch overhead).
        assert parallel.compute_seconds < classic.compute_seconds / 4
        assert parallel.participating_devices == 8
        assert classic.participating_devices == 1

    def test_logits_memory_divided_by_pipeline_size(self, cost_model, comm):
        tokens = 65536
        classic = output_layer_costs(
            LLAMA_13B, tokens, VocabParallelConfig(False, 8), cost_model
        )
        domain = comm.pipeline_domain(8, 8)
        parallel = output_layer_costs(
            LLAMA_13B,
            tokens,
            VocabParallelConfig(True, 8),
            cost_model,
            comm_model=comm,
            pipeline_domain=domain,
        )
        assert parallel.logits_bytes == pytest.approx(classic.logits_bytes / 8)

    def test_classic_has_no_communication(self, cost_model):
        costs = output_layer_costs(
            LLAMA_13B, 4096, VocabParallelConfig(False, 8), cost_model
        )
        assert costs.communication_seconds == 0.0

    def test_parallel_requires_comm_model(self, cost_model):
        with pytest.raises(ValueError, match="communication model"):
            output_layer_costs(
                LLAMA_13B, 4096, VocabParallelConfig(True, 8), cost_model
            )

    def test_parallel_communication_small_relative_to_classic_gemm(
        self, cost_model, comm
    ):
        """The broadcast + scalar sync must be far cheaper than the GEMM it removes."""
        tokens = 32768
        domain = comm.pipeline_domain(8, 8)
        classic = output_layer_costs(
            LLAMA_13B, tokens, VocabParallelConfig(False, 8), cost_model
        )
        parallel = output_layer_costs(
            LLAMA_13B,
            tokens,
            VocabParallelConfig(True, 8),
            cost_model,
            comm_model=comm,
            pipeline_domain=domain,
        )
        assert parallel.total_seconds < classic.total_seconds

    def test_zero_tokens(self, cost_model):
        costs = output_layer_costs(
            LLAMA_13B, 0, VocabParallelConfig(False, 8), cost_model
        )
        assert costs.compute_seconds == 0.0
        assert costs.logits_bytes == 0.0

    def test_negative_tokens_rejected(self, cost_model):
        with pytest.raises(ValueError):
            output_layer_costs(
                LLAMA_13B, -1, VocabParallelConfig(False, 8), cost_model
            )

    def test_paper_logits_example(self, cost_model):
        """Section 4.3.1: 256K tokens x 128000 vocab fp32 under 8-way TP ~ 16 GiB."""
        tokens = 256 * 1024
        classic = output_layer_costs(
            LLAMA_13B,
            tokens,
            VocabParallelConfig(False, 8, tensor_parallel_size=8),
            cost_model,
        )
        gib = classic.logits_bytes / 1024**3
        assert gib == pytest.approx(15.625, rel=0.01)

    def test_backward_kind_costs_more_than_forward(self, cost_model):
        fwd = output_layer_costs(
            LLAMA_13B, 8192, VocabParallelConfig(False, 8), cost_model, kind=PassKind.FORWARD
        )
        bwd = output_layer_costs(
            LLAMA_13B, 8192, VocabParallelConfig(False, 8), cost_model, kind=PassKind.BACKWARD
        )
        assert bwd.compute_seconds > fwd.compute_seconds
