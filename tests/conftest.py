"""Test configuration.

Ensures the in-repo sources are importable even when the package has not been
installed (e.g. running ``pytest`` straight from a fresh checkout in an
offline environment where ``pip install -e .`` is unavailable).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - trivial path bootstrap
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))
