"""Tests for the table generators (Table 2, Table 3, Table 4)."""

import pytest

from repro.analysis import tables
from repro.model.config import LLAMA_70B


class TestTable2:
    def test_contains_every_scheme(self):
        rows = tables.table2_scheme_comparison()
        assert {r.scheme for r in rows} >= {"gpipe", "1f1b", "interleaved-1f1b", "zb-v", "v-half", "slimpipe", "terapipe"}

    def test_slimpipe_best_on_both_axes(self):
        rows = {r.scheme: r for r in tables.table2_scheme_comparison(num_microbatches=16)}
        slim = rows["slimpipe"]
        for name, row in rows.items():
            if name == "slimpipe":
                continue
            assert slim.activation_memory_factor <= row.activation_memory_factor + 1e-12
        assert slim.bubble_fraction < rows["1f1b"].bubble_fraction

    def test_custom_scheme_subset(self):
        rows = tables.table2_scheme_comparison(schemes=("1f1b", "slimpipe"))
        assert len(rows) == 2

    def test_render(self):
        text = tables.render_table2(tables.table2_scheme_comparison())
        assert "Table 2" in text and "slimpipe" in text


class TestTable3:
    def test_parameter_counts_match_paper(self):
        """Table 3 parameter counts (including the 128,000 vocabulary)."""
        rows = {r.model: r for r in tables.table3_model_specifications()}
        assert rows["llama-13b"].params_billions == pytest.approx(13.3, rel=0.02)
        assert rows["llama-70b"].params_billions == pytest.approx(69.5, rel=0.02)
        assert rows["llama-149b"].params_billions == pytest.approx(148.9, rel=0.02)
        assert rows["mixtral-8x7b"].params_billions == pytest.approx(47.0, rel=0.02)
        assert rows["mixtral-8x22b"].params_billions == pytest.approx(141.0, rel=0.02)

    def test_architecture_columns(self):
        rows = {r.model: r for r in tables.table3_model_specifications()}
        assert rows["llama-70b"].num_layers == 80
        assert rows["llama-70b"].num_groups == 8
        assert rows["mixtral-8x22b"].hidden_size == 6144

    def test_custom_model_list(self):
        rows = tables.table3_model_specifications(models=(LLAMA_70B,))
        assert len(rows) == 1


class TestTable4:
    @pytest.fixture(scope="class")
    def rows(self):
        return tables.table4_ultra_long_context()

    def test_all_paper_configs_feasible(self, rows):
        """SlimPipe + offloading reaches every Table 4 context length."""
        assert all(r.feasible for r in rows)

    def test_contexts_covered(self, rows):
        contexts = {r.model: r.context_k for r in rows}
        assert contexts["llama-70b"] == 2048
        assert contexts["mixtral-8x7b"] == 4096

    def test_mfu_stays_high_at_ultra_long_context(self, rows):
        """The paper's headline: >= 40% on Llama 70B at 2048K; we require the
        same order of magnitude (>= 30%) from the analytic model."""
        for row in rows:
            assert row.mfu > 0.25

    def test_dense_models_need_offloading(self, rows):
        by_model = {r.model: r for r in rows}
        assert by_model["llama-70b"].offload_ratio > 0.0
        assert by_model["llama-149b"].offload_ratio > 0.0

    def test_memory_fits_the_gpu(self, rows):
        assert all(r.peak_memory_gib <= 80.0 for r in rows)

    def test_render(self, rows):
        text = tables.render_table4(rows)
        assert "Table 4" in text and "2048K" in text
