"""Tests for the end-to-end SlimPipe planner (repro.core.planner)."""

import pytest

from repro.constants import GIB
from repro.core.planner import SlimPipeOptions, SlimPipePlanner
from repro.hardware.topology import hopper_cluster
from repro.model.config import LLAMA_13B
from repro.model.memory import RecomputeMode
from repro.parallel.config import ParallelConfig, WorkloadConfig


def make_planner(
    pipeline=4,
    slices=8,
    virtual=1,
    sequence_k=32,
    microbatches=4,
    options=SlimPipeOptions(),
    tensor=8,
):
    seq = sequence_k * 1024
    parallel = ParallelConfig(
        tensor_parallel_size=tensor,
        pipeline_parallel_size=pipeline,
        virtual_pipeline_size=virtual,
        num_slices=slices,
    )
    workload = WorkloadConfig(
        sequence_length=seq, tokens_per_iteration=seq * microbatches
    )
    cluster = hopper_cluster(tensor * pipeline)
    return SlimPipePlanner(LLAMA_13B, cluster, parallel, workload, options)


class TestPlannerConstruction:
    def test_defaults(self):
        planner = make_planner()
        assert planner.num_slices == 8
        assert planner.num_microbatches == 4

    def test_slices_default_to_pipeline_size(self):
        planner = make_planner(slices=None)
        assert planner.num_slices == 4

    def test_invalid_model_split_rejected(self):
        # Llama 13B has 40 layers; p=3 does not divide it.
        with pytest.raises(ValueError):
            make_planner(pipeline=3, slices=3, tensor=8)


class TestPlannerRun:
    def test_run_produces_consistent_metrics(self):
        execution = make_planner().run()
        assert execution.iteration_time > 0
        assert 0.0 < execution.mfu < 1.0
        assert 0.0 <= execution.metrics.bubble_fraction < 0.5
        assert execution.peak_memory_bytes > 0
        assert len(execution.memory_profiles) == 4
        assert execution.schedule.total_passes() == len(execution.timeline.spans)

    def test_memory_decreases_with_pipeline_size(self):
        """Figure 1 / Figure 10: activation memory scales ~1/p under SlimPipe."""
        peaks = []
        for p in (2, 4, 8):
            execution = make_planner(pipeline=p, slices=4 * p, microbatches=8).run()
            activation_peak = max(
                prof.peak_activation_bytes for prof in execution.memory_profiles
            )
            peaks.append(activation_peak)
        assert peaks[0] > peaks[1] > peaks[2]
        # Roughly inverse-proportional (within 40% of ideal halving).
        assert peaks[0] / peaks[1] > 1.6
        assert peaks[1] / peaks[2] > 1.6

    def test_more_slices_reduce_activation_memory(self):
        coarse = make_planner(slices=4).run()
        fine = make_planner(slices=32).run()
        coarse_peak = max(p.peak_activation_bytes for p in coarse.memory_profiles)
        fine_peak = max(p.peak_activation_bytes for p in fine.memory_profiles)
        assert fine_peak < coarse_peak

    def test_context_exchange_reduces_bubble(self):
        with_exchange = make_planner(
            options=SlimPipeOptions(context_exchange=True)
        ).run()
        without = make_planner(
            options=SlimPipeOptions(context_exchange=False)
        ).run()
        assert (
            with_exchange.metrics.bubble_fraction
            < without.metrics.bubble_fraction
        )

    def test_context_exchange_improves_mfu(self):
        with_exchange = make_planner(options=SlimPipeOptions(context_exchange=True)).run()
        without = make_planner(options=SlimPipeOptions(context_exchange=False)).run()
        assert with_exchange.mfu > without.mfu

    def test_vocab_parallel_reduces_last_stage_memory(self):
        shared = make_planner(options=SlimPipeOptions(vocab_parallel=True)).run()
        classic = make_planner(options=SlimPipeOptions(vocab_parallel=False)).run()
        last = classic.memory_profiles[-1].peak_activation_bytes
        last_shared = shared.memory_profiles[-1].peak_activation_bytes
        assert last_shared < last

    def test_full_recompute_trades_memory_for_time(self):
        plain = make_planner().run()
        recompute = make_planner(
            options=SlimPipeOptions(recompute=RecomputeMode.FULL)
        ).run()
        assert recompute.iteration_time > plain.iteration_time
        plain_act = max(p.peak_activation_bytes for p in plain.memory_profiles)
        rec_act = max(p.peak_activation_bytes for p in recompute.memory_profiles)
        assert rec_act < plain_act

    def test_offload_reduces_resident_memory_when_requested(self):
        base = make_planner(sequence_k=64, microbatches=2).run()
        offloaded = make_planner(
            sequence_k=64,
            microbatches=2,
            options=SlimPipeOptions(offload_ratio=0.5),
        ).run()
        assert offloaded.offload is not None
        assert offloaded.offload.ratio == 0.5
        assert offloaded.peak_memory_bytes < base.peak_memory_bytes

    def test_mfu_reasonable_for_paper_scale_point(self):
        """Llama 13B, 256K, p=4, n=16: MFU should land in a plausible 20-60% band."""
        execution = make_planner(sequence_k=256, slices=16, microbatches=2).run()
        assert 0.15 < execution.mfu < 0.65

    def test_interleaving_reduces_activation_memory(self):
        plain = make_planner(virtual=1, slices=8).run()
        inter = make_planner(virtual=2, slices=8).run()
        plain_act = max(p.peak_activation_bytes for p in plain.memory_profiles)
        inter_act = max(p.peak_activation_bytes for p in inter.memory_profiles)
        assert inter_act < plain_act * 1.05
