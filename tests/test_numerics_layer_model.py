"""Tests for the numeric transformer layer and the single-device reference model."""

import numpy as np
import pytest

from repro.numerics.layer import (
    LayerGradients,
    TransformerLayerParams,
    layer_backward,
    layer_forward,
)
from repro.numerics.model import (
    ModelGradients,
    ModelParams,
    NumericModelConfig,
    ReferenceModel,
)


def make_layer(seed=0, hidden=12, heads=4, groups=2, ffn=20):
    rng = np.random.default_rng(seed)
    return TransformerLayerParams.init(
        rng, hidden_size=hidden, num_heads=heads, num_groups=groups, ffn_size=ffn
    )


class TestLayerParams:
    def test_init_shapes(self):
        layer = make_layer()
        assert layer.hidden_size == 12
        assert layer.head_dim == 3
        assert layer.wq.shape == (12, 12)
        assert layer.wk.shape == (12, 6)
        assert layer.w_gate.shape == (12, 20)

    def test_invalid_head_grouping(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            TransformerLayerParams.init(
                rng, hidden_size=12, num_heads=4, num_groups=3, ffn_size=8
            )

    def test_gradients_zeros_like_and_accumulate(self):
        layer = make_layer()
        grads = LayerGradients.zeros_like(layer)
        assert np.all(grads.wq == 0)
        other = LayerGradients.zeros_like(layer)
        other.wq += 1.0
        grads.add_(other)
        assert np.all(grads.wq == 1.0)


class TestLayerSliceEquivalence:
    def test_sliced_forward_matches_full_forward(self):
        """Processing a sequence in slices with a KV cache == one full pass."""
        layer = make_layer(seed=3)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((8, layer.hidden_size))

        full_out, _, _ = layer_forward(layer, x, kv_cache=[], q_offset=0)

        outputs = []
        cache_blocks = []
        offsets = []
        position = 0
        for start in range(0, 8, 2):
            slice_x = x[start : start + 2]
            out, own_kv, _ = layer_forward(
                layer,
                slice_x,
                kv_cache=cache_blocks,
                q_offset=position,
                kv_offsets=offsets,
            )
            outputs.append(out)
            cache_blocks.append(own_kv)
            offsets.append(position)
            position += 2
        np.testing.assert_allclose(np.concatenate(outputs), full_out, rtol=1e-10)

    def test_sliced_backward_matches_full_backward(self):
        """LIFO backward with KV-gradient accumulation == one full backward."""
        layer = make_layer(seed=5)
        rng = np.random.default_rng(2)
        tokens = 6
        x = rng.standard_normal((tokens, layer.hidden_size))
        dout = rng.standard_normal((tokens, layer.hidden_size))

        # Full-sequence ground truth.
        full_out, full_kv, full_cache = layer_forward(layer, x, kv_cache=[], q_offset=0)
        full_dx, full_grads, _ = layer_backward(
            layer, dout, full_cache, kv_cache=[], own_kv=full_kv
        )

        # Sliced execution (3 slices of 2 tokens).
        slice_size = 2
        num_slices = tokens // slice_size
        caches, kv_chunks = [], []
        for s in range(num_slices):
            sx = x[s * slice_size : (s + 1) * slice_size]
            _, own_kv, cache = layer_forward(
                layer, sx, kv_cache=kv_chunks, q_offset=s * slice_size
            )
            kv_chunks.append(own_kv)
            caches.append(cache)

        sliced_grads = LayerGradients.zeros_like(layer)
        dx_parts = [None] * num_slices
        accumulators = {}
        for s in reversed(range(num_slices)):
            sdout = dout[s * slice_size : (s + 1) * slice_size]
            dx, grads, earlier = layer_backward(
                layer,
                sdout,
                caches[s],
                kv_cache=kv_chunks[:s],
                own_kv=kv_chunks[s],
                extra_dk_dv=accumulators.pop(s, None),
            )
            sliced_grads.add_(grads)
            dx_parts[s] = dx
            for j, (dk, dv) in enumerate(earlier):
                if j in accumulators:
                    accumulators[j] = (accumulators[j][0] + dk, accumulators[j][1] + dv)
                else:
                    accumulators[j] = (dk, dv)

        np.testing.assert_allclose(np.concatenate(dx_parts), full_dx, rtol=1e-9, atol=1e-12)
        for name, value in full_grads.as_dict().items():
            np.testing.assert_allclose(
                getattr(sliced_grads, name), value, rtol=1e-9, atol=1e-12, err_msg=name
            )

    def test_layer_backward_finite_differences_on_weights(self):
        """Spot-check two weight gradients against finite differences."""
        layer = make_layer(seed=7, hidden=8, heads=2, groups=1, ffn=12)
        rng = np.random.default_rng(4)
        x = rng.standard_normal((4, 8))
        dout = rng.standard_normal((4, 8))

        def loss():
            out, _, _ = layer_forward(layer, x, kv_cache=[], q_offset=0)
            return float(np.sum(out * dout))

        _, own_kv, cache = layer_forward(layer, x, kv_cache=[], q_offset=0)
        _, grads, _ = layer_backward(layer, dout, cache, kv_cache=[], own_kv=own_kv)

        eps = 1e-6
        for name in ("wq", "w_down"):
            weight = getattr(layer, name)
            analytic = getattr(grads, name)
            numeric = np.zeros_like(weight)
            flat, nflat = weight.reshape(-1), numeric.reshape(-1)
            for i in range(0, flat.size, max(1, flat.size // 40)):  # sample entries
                orig = flat[i]
                flat[i] = orig + eps
                plus = loss()
                flat[i] = orig - eps
                minus = loss()
                flat[i] = orig
                nflat[i] = (plus - minus) / (2 * eps)
                assert analytic.reshape(-1)[i] == pytest.approx(nflat[i], abs=1e-5)


class TestNumericModelConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NumericModelConfig(hidden_size=10, num_heads=3)
        with pytest.raises(ValueError):
            NumericModelConfig(num_heads=4, num_groups=3)
        with pytest.raises(ValueError):
            NumericModelConfig(num_layers=0)


class TestReferenceModel:
    def test_loss_is_finite_and_positive(self):
        cfg = NumericModelConfig()
        params = ModelParams.init(cfg, seed=0)
        rng = np.random.default_rng(1)
        tokens = rng.integers(0, cfg.vocab_size, size=10)
        targets = rng.integers(0, cfg.vocab_size, size=10)
        model = ReferenceModel(params)
        loss = model.loss(tokens, targets)
        assert np.isfinite(loss)
        # Random init ~ uniform predictions: loss near log(V).
        assert loss == pytest.approx(np.log(cfg.vocab_size), rel=0.25)

    def test_gradients_cover_every_parameter(self):
        cfg = NumericModelConfig(num_layers=2)
        params = ModelParams.init(cfg, seed=3)
        rng = np.random.default_rng(2)
        tokens = rng.integers(0, cfg.vocab_size, size=8)
        targets = rng.integers(0, cfg.vocab_size, size=8)
        _, grads = ReferenceModel(params).loss_and_gradients(tokens, targets)
        flat = grads.flatten()
        assert len(flat) == 3 + 9 * cfg.num_layers
        for name, value in flat.items():
            assert np.any(value != 0.0), f"gradient {name} is identically zero"

    def test_embedding_gradient_matches_finite_differences(self):
        cfg = NumericModelConfig(num_layers=1, hidden_size=8, num_heads=2, num_groups=1, ffn_size=12, vocab_size=16)
        params = ModelParams.init(cfg, seed=5)
        rng = np.random.default_rng(6)
        tokens = rng.integers(0, cfg.vocab_size, size=5)
        targets = rng.integers(0, cfg.vocab_size, size=5)
        model = ReferenceModel(params)
        _, grads = model.loss_and_gradients(tokens, targets)

        eps = 1e-6
        token_id = int(tokens[2])
        analytic = grads.embedding[token_id, 3]
        params.embedding[token_id, 3] += eps
        plus = model.loss(tokens, targets)
        params.embedding[token_id, 3] -= 2 * eps
        minus = model.loss(tokens, targets)
        params.embedding[token_id, 3] += eps
        assert analytic == pytest.approx((plus - minus) / (2 * eps), abs=1e-6)

    def test_sgd_step_decreases_loss(self):
        """A tiny training sanity check: one gradient step reduces the loss."""
        cfg = NumericModelConfig(num_layers=2, vocab_size=32)
        params = ModelParams.init(cfg, seed=11)
        rng = np.random.default_rng(12)
        tokens = rng.integers(0, cfg.vocab_size, size=16)
        targets = rng.integers(0, cfg.vocab_size, size=16)
        model = ReferenceModel(params)
        loss0, grads = model.loss_and_gradients(tokens, targets)
        lr = 0.5
        params.embedding -= lr * grads.embedding
        params.final_norm -= lr * grads.final_norm
        params.output_weight -= lr * grads.output_weight
        for layer, lg in zip(params.layers, grads.layers):
            for name, grad in lg.as_dict().items():
                getattr(layer, name).__isub__(lr * grad)
        loss1 = model.loss(tokens, targets)
        assert loss1 < loss0

    def test_input_validation(self):
        cfg = NumericModelConfig()
        params = ModelParams.init(cfg)
        model = ReferenceModel(params)
        with pytest.raises(ValueError):
            model.loss_and_gradients(np.zeros(4, dtype=int), np.zeros(5, dtype=int))

    def test_model_gradients_zeros_like(self):
        cfg = NumericModelConfig(num_layers=3)
        params = ModelParams.init(cfg)
        grads = ModelGradients.zeros_like(params)
        assert len(grads.layers) == 3
        assert grads.embedding.shape == params.embedding.shape
