"""Tests for GPU specs, cluster topology and the communication model."""

import pytest

from repro.constants import GIB
from repro.hardware import CommModel, ClusterTopology, GPUSpec, HOPPER_80GB, hopper_cluster


def test_hopper_spec_matches_paper():
    assert HOPPER_80GB.memory_gib == pytest.approx(80.0)
    assert HOPPER_80GB.peak_flops == pytest.approx(989e12)


def test_gpu_spec_validation():
    with pytest.raises(ValueError):
        GPUSpec(name="bad", peak_flops=0, memory_bytes=GIB)
    with pytest.raises(ValueError):
        GPUSpec(name="bad", peak_flops=1e12, memory_bytes=GIB, gemm_efficiency_forward=1.5)


def test_cluster_construction():
    cluster = hopper_cluster(256)
    assert cluster.num_nodes == 32
    assert cluster.total_gpus == 256
    with pytest.raises(ValueError):
        hopper_cluster(100)


def test_node_placement():
    cluster = hopper_cluster(32)
    assert cluster.node_of(0) == 0
    assert cluster.node_of(8) == 1
    assert cluster.same_node(0, 7)
    assert not cluster.same_node(7, 8)
    with pytest.raises(ValueError):
        cluster.node_of(32)


def test_bandwidth_selection():
    cluster = hopper_cluster(16)
    assert cluster.bandwidth_between(0, 1) == cluster.intra_node_bandwidth
    assert cluster.bandwidth_between(0, 8) == cluster.inter_node_bandwidth
    assert cluster.bandwidth_between(3, 3) == float("inf")
    assert cluster.latency_between(3, 3) == 0.0
    assert cluster.latency_between(0, 9) > cluster.latency_between(0, 1)


def test_fits_in_node():
    cluster = hopper_cluster(64)
    assert cluster.fits_in_node(8)
    assert not cluster.fits_in_node(9)


@pytest.fixture()
def comm():
    return CommModel(hopper_cluster(64))


def test_p2p_time_scaling(comm):
    small = comm.p2p_time(1 * GIB, intra_node=True)
    large = comm.p2p_time(2 * GIB, intra_node=True)
    assert large > small
    assert comm.p2p_time(0, intra_node=True) == 0.0
    assert comm.p2p_time(1 * GIB, intra_node=False) > small
    with pytest.raises(ValueError):
        comm.p2p_time(-1, intra_node=True)


def test_p2p_between_ranks(comm):
    same_node = comm.p2p_time_between(1 * GIB, 0, 1)
    cross_node = comm.p2p_time_between(1 * GIB, 0, 8)
    assert cross_node > same_node
    assert comm.p2p_time_between(1 * GIB, 3, 3) == 0.0


def test_collective_formulas(comm):
    domain = comm.domain(8, intra_node=True)
    nbytes = 1 * GIB
    ar = comm.all_reduce_time(nbytes, domain)
    ag = comm.all_gather_time(nbytes, domain)
    rs = comm.reduce_scatter_time(nbytes, domain)
    assert ar == pytest.approx(ag + rs, rel=1e-6)
    assert comm.all_reduce_time(nbytes, comm.domain(1, intra_node=True)) == 0.0
    assert comm.all_to_all_time(nbytes, domain) > 0
    assert comm.broadcast_time(nbytes, domain) > 0
    assert comm.scalar_sync_time(domain) < 1e-3


def test_domain_too_large_for_node(comm):
    with pytest.raises(ValueError):
        comm.domain(16, intra_node=True)


def test_single_rank_domain_is_free(comm):
    domain = comm.domain(1, intra_node=True)
    assert comm.all_gather_time(GIB, domain) == 0.0
    assert comm.broadcast_time(GIB, domain) == 0.0
    assert comm.scalar_sync_time(domain) == 0.0
