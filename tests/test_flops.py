"""Tests for the FLOPs model, including slice additivity under causal attention."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import LLAMA_13B, LLAMA_70B, MIXTRAL_8X7B
from repro.model.flops import (
    FlopsBreakdown,
    attention_core_flops,
    layer_forward_flops,
    model_flops_per_iteration,
    model_forward_flops,
    output_layer_flops,
)


def test_attention_flops_full_sequence_closed_form():
    model = LLAMA_13B
    s = 1024
    expected = 4.0 * model.hidden_size * (s * (s + 1) / 2.0)
    assert attention_core_flops(model, s, 0) == pytest.approx(expected)


def test_attention_flops_zero_queries():
    assert attention_core_flops(LLAMA_13B, 0, 100) == 0.0


def test_attention_flops_negative_kv_offset_rejected():
    with pytest.raises(ValueError):
        attention_core_flops(LLAMA_13B, 10, -1)


def test_non_causal_attention_flops():
    model = LLAMA_13B
    got = attention_core_flops(model, 8, 24, causal=False)
    assert got == pytest.approx(4.0 * model.hidden_size * 8 * 32)


@given(
    total=st.integers(min_value=2, max_value=4096),
    num_slices=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=50, deadline=None)
def test_sliced_attention_flops_sum_to_full(total, num_slices):
    """Uniformly slicing a sequence conserves total attention FLOPs."""
    model = LLAMA_70B
    num_slices = min(num_slices, total)
    base = total // num_slices
    remainder = total % num_slices
    lengths = [base + (1 if i < remainder else 0) for i in range(num_slices)]
    offset = 0
    sliced = 0.0
    for length in lengths:
        sliced += attention_core_flops(model, length, offset)
        offset += length
    full = attention_core_flops(model, total, 0)
    assert sliced == pytest.approx(full, rel=1e-12)


def test_later_slices_cost_more():
    """Causal attention makes later uniform slices strictly more expensive."""
    model = LLAMA_13B
    slice_len = 512
    costs = [
        attention_core_flops(model, slice_len, i * slice_len) for i in range(8)
    ]
    assert all(b > a for a, b in zip(costs, costs[1:]))


def test_layer_flops_linear_in_tokens():
    model = LLAMA_13B
    one = layer_forward_flops(model, 128, 0).linear
    two = layer_forward_flops(model, 256, 0).linear
    assert two == pytest.approx(2 * one)


def test_moe_layer_uses_topk_experts():
    dense_like = layer_forward_flops(MIXTRAL_8X7B, 128, 0).linear
    # Active experts = 2, so MoE MLP FLOPs are twice a dense model of equal H.
    h, H = MIXTRAL_8X7B.hidden_size, MIXTRAL_8X7B.ffn_hidden_size
    mlp = 6.0 * h * H * 2 * 128
    attn_linear = (2.0 * h * (h + 2 * MIXTRAL_8X7B.kv_channels) + 2.0 * h * h) * 128
    router = 2.0 * h * MIXTRAL_8X7B.num_experts * 128
    assert dense_like == pytest.approx(mlp + attn_linear + router)


def test_backward_decomposition():
    flops = FlopsBreakdown(linear=100.0, attention=40.0)
    bi = flops.backward_input_grad()
    bw = flops.backward_weight_grad()
    assert bi.linear == 100.0 and bi.attention == 80.0
    assert bw.linear == 100.0 and bw.attention == 0.0
    total = flops.backward_total()
    assert total.total == pytest.approx(bi.total + bw.total)


def test_flops_breakdown_arithmetic():
    a = FlopsBreakdown(linear=1.0, attention=2.0)
    b = FlopsBreakdown(linear=3.0, attention=4.0)
    assert (a + b).total == pytest.approx(10.0)
    assert (2 * a).attention == pytest.approx(4.0)
    assert (a * 2).linear == pytest.approx(2.0)


def test_output_layer_flops():
    model = LLAMA_13B
    got = output_layer_flops(model, 64)
    assert got.linear == pytest.approx(2.0 * model.hidden_size * model.vocab_size * 64)
    assert got.attention == 0.0


def test_model_forward_and_iteration_flops():
    model = LLAMA_13B
    fwd = model_forward_flops(model, 2048)
    assert fwd.total > 0
    iteration = model_flops_per_iteration(model, 2048, num_sequences=4)
    assert iteration == pytest.approx(3.0 * fwd.total * 4)
    fwd_only = model_flops_per_iteration(model, 2048, 4, include_backward=False)
    assert fwd_only == pytest.approx(fwd.total * 4)


def test_dense_forward_flops_close_to_6nd_heuristic():
    """For short contexts total FLOPs/token is close to the 6*N rule of thumb."""
    model = LLAMA_70B
    seq = 4096
    flops_per_token = model_flops_per_iteration(model, seq, 1) / seq
    heuristic = 6.0 * model.total_params()
    assert flops_per_token == pytest.approx(heuristic, rel=0.15)
