"""Tests for the per-figure data generators (repro.analysis.figures).

Each test checks the *shape* of the paper's result — who wins, how quantities
scale — not absolute numbers, following the reproduction brief.
"""

import pytest

from repro.analysis import figures
from repro.model.config import LLAMA_13B, LLAMA_70B


class TestFigure1:
    def test_slimpipe_activation_scales_inversely_with_p(self):
        result = figures.figure1_memory_footprint()
        rows = {r.pipeline_parallel_size: r for r in result.rows}
        assert rows[16].slimpipe_activation_gib < rows[2].slimpipe_activation_gib / 4
        # Classic PP activation memory stays constant.
        assert rows[16].classic_activation_gib == pytest.approx(
            rows[2].classic_activation_gib, rel=0.01
        )

    def test_model_states_shrink_with_p(self):
        result = figures.figure1_memory_footprint()
        rows = {r.pipeline_parallel_size: r for r in result.rows}
        assert rows[8].model_state_gib < rows[1].model_state_gib / 4

    def test_skips_non_dividing_pipeline_sizes(self):
        result = figures.figure1_memory_footprint(model=LLAMA_13B)
        sizes = [r.pipeline_parallel_size for r in result.rows]
        assert 16 not in sizes  # 40 layers do not divide by 16

    def test_to_text_contains_rows(self):
        text = figures.figure1_memory_footprint().to_text()
        assert "Figure 1" in text and "SlimPipe" in text


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return figures.figure2_max_context(max_context_k=768, step_k=8)

    def test_slimpipe_reaches_several_times_longer_context(self, result):
        slim = result.max_context("slimpipe")
        others = [r.max_context_k for r in result.rows if r.scheme != "slimpipe"]
        # The paper reports 4.8-8.3x; the analytic model lands in the same band.
        assert slim >= 3 * max(others)

    def test_all_schemes_fit_something(self, result):
        assert all(r.max_context_k > 0 for r in result.rows)

    def test_vhalf_beats_zbv(self, result):
        assert result.max_context("v-half") >= result.max_context("zb-v")

    def test_missing_scheme_raises(self, result):
        with pytest.raises(KeyError):
            result.max_context("gpipe")


class TestFigure3:
    def test_slimpipe_near_zero_and_smallest(self):
        result = figures.figure3_bubble_fractions()
        slim = result.fraction("slimpipe")
        assert slim < 0.05
        for row in result.rows:
            if row.scheme != "slimpipe":
                assert row.bubble_fraction > slim

    def test_interleaved_below_default_1f1b(self):
        result = figures.figure3_bubble_fractions()
        assert result.fraction("interleaved-1f1b") < result.fraction("1f1b")


class TestFigures4And5:
    def test_figure4_accumulation_matches_eq1(self):
        result = figures.figure4_schedule_structure()
        # (1 + 2(p-1)/n) / p with p=4, n=8.
        assert result.accumulated_fraction_of_microbatch == pytest.approx(1.75 / 4)
        assert result.warmup_units == [14, 12, 10, 8]
        assert "dev 0" in result.ascii_timeline

    def test_figure5_interleaving_reduces_per_unit_share(self):
        plain = figures.figure4_schedule_structure()
        inter = figures.figure5_interleaved_schedule()
        assert inter.accumulated_fraction_of_microbatch < plain.accumulated_fraction_of_microbatch

    def test_to_text(self):
        assert "warm-up" in figures.figure5_interleaved_schedule().to_text()


class TestFigure6:
    def test_activation_monotone_in_slices_and_bounded_by_inverse_p(self):
        rows = figures.figure6a_activation_vs_slices()
        by_p = {}
        for r in rows:
            by_p.setdefault(r.pipeline_parallel_size, []).append(r)
        for p, series in by_p.items():
            fractions = [r.activation_fraction for r in sorted(series, key=lambda r: r.num_slices)]
            assert fractions == sorted(fractions, reverse=True)
            assert fractions[-1] > 1.0 / p  # approaches but never reaches 1/p
            assert fractions[0] <= 1.0

    def test_bubble_monotone_in_slices_and_microbatches(self):
        rows = figures.figure6b_bubble_vs_slices()
        by_m = {}
        for r in rows:
            by_m.setdefault(r.num_microbatches, []).append(r)
        for m, series in by_m.items():
            fractions = [r.bubble_fraction for r in sorted(series, key=lambda r: r.num_slices)]
            assert fractions == sorted(fractions, reverse=True)
        # More microbatches -> smaller bubbles at the same n.
        at_n8 = {m: [r for r in rows if r.num_microbatches == m and r.num_slices == 8][0] for m in (2, 8)}
        assert at_n8[8].bubble_fraction < at_n8[2].bubble_fraction

    def test_combined_result(self):
        result = figures.figure6_slices_sweep()
        assert result.activation_rows and result.bubble_rows
        assert "Figure 6a" in result.to_text()


class TestFigure7:
    def test_context_exchange_removes_imbalance_bubbles(self):
        result = figures.figure7_imbalance_bubbles(
            sequence_length=64 * 1024, num_slices=8, pipeline_parallel_size=4
        )
        assert result.bubble_with_exchange < result.bubble_without_exchange
        assert result.makespan_with_exchange < result.makespan_without_exchange
        assert result.bubble_reduction > 0.0
        assert "Figure 7" in result.to_text()


class TestFigure8:
    def test_balances_to_within_one_slice(self):
        result = figures.figure8_context_exchange_plan()
        assert result.max_imbalance_before > 1.0
        assert result.max_imbalance_after <= 1.0 + 1e-9
        assert sum(result.balanced) == pytest.approx(sum(result.original))
        assert result.num_transfers > 0


class TestFigure9:
    def test_vocab_parallel_removes_output_layer_bubble(self):
        result = figures.figure9_vocab_parallel_bubble(
            sequence_length=64 * 1024, num_slices=8
        )
        assert result.makespan_vocab_parallel < result.makespan_last_device_gemm
        assert result.bubble_vocab_parallel <= result.bubble_last_device_gemm
        assert result.speedup > 1.0


class TestFigure10:
    @pytest.fixture(scope="class")
    def result(self):
        return figures.figure10_memory_scaling(
            sequence_ks=(32, 64), pipeline_sizes=(2, 4, 8), num_microbatches=2
        )

    def test_memory_tracks_theoretical_curve(self, result):
        for row in result.rows:
            assert row.first_device_gib == pytest.approx(row.theoretical_gib, rel=0.25)
            assert row.last_device_gib == pytest.approx(row.theoretical_gib, rel=0.25)

    def test_memory_decreases_with_p(self, result):
        for seq_k in (32, 64):
            rows = result.rows_for(seq_k)
            peaks = [r.first_device_gib for r in sorted(rows, key=lambda r: r.pipeline_parallel_size)]
            assert peaks == sorted(peaks, reverse=True)

    def test_longer_context_uses_more_memory(self, result):
        short = result.rows_for(32)[0]
        long = result.rows_for(64)[0]
        assert long.first_device_gib > short.first_device_gib


class TestFigure11:
    @pytest.fixture(scope="class")
    def result(self):
        return figures.figure11_mfu_vs_slices(
            sequence_ks=(128, 512), slice_multipliers=(1, 2, 4, 8)
        )

    def test_mfu_in_plausible_band(self, result):
        assert all(0.1 < r.mfu < 0.6 for r in result.rows)

    def test_short_context_degrades_faster_with_many_slices(self, result):
        """Figure 11: the 128K curve drops off sooner than the 512K curve."""
        short = dict(result.series(128))
        long = dict(result.series(512))
        short_drop = (max(short.values()) - short[32]) / max(short.values())
        long_drop = (max(long.values()) - long[32]) / max(long.values())
        assert short_drop > long_drop

    def test_transition_point_later_for_longer_context(self, result):
        assert result.best_slices(512) >= result.best_slices(128)


class TestFigure12:
    @pytest.fixture(scope="class")
    def result(self):
        return figures.figure12_end_to_end(
            models=(LLAMA_70B,), gpu_counts=(128,), sequence_ks=(64, 256, 512)
        )

    def test_slimpipe_always_feasible_and_fastest(self, result):
        for seq_k in (64, 256, 512):
            slim = result.cell("llama-70b", 128, seq_k, "slimpipe")
            assert slim.feasible
            for system in ("deepspeed", "megatron-lm"):
                other = result.cell("llama-70b", 128, seq_k, system)
                if other.feasible:
                    assert slim.mfu > other.mfu

    def test_speedup_widens_with_context(self, result):
        s64 = result.speedup_over_megatron("llama-70b", 128, 64)
        s256 = result.speedup_over_megatron("llama-70b", 128, 256)
        assert s64 is not None and s256 is not None
        assert s256 > s64

    def test_baselines_fail_at_512k(self, result):
        assert not result.cell("llama-70b", 128, 512, "megatron-lm").feasible
        assert not result.cell("llama-70b", 128, 512, "deepspeed").feasible

    def test_labels(self, result):
        cell = result.cell("llama-70b", 128, 512, "megatron-lm")
        assert cell.label in ("OOM", "no-config")
        assert "%" in result.cell("llama-70b", 128, 64, "slimpipe").label

    def test_missing_cell_raises(self, result):
        with pytest.raises(KeyError):
            result.cell("llama-70b", 512, 64, "slimpipe")

    def test_unregistered_model_config_rejected_loudly(self):
        # Cells travel to the sweep evaluator by registry name, so a modified
        # copy sharing a registered name must not be silently swapped for the
        # registry entry.
        import dataclasses

        tweaked = dataclasses.replace(LLAMA_70B, num_layers=LLAMA_70B.num_layers * 2)
        with pytest.raises(ValueError, match="registered model configs"):
            figures.figure12_end_to_end(
                models=(tweaked,), gpu_counts=(128,), sequence_ks=(64,)
            )


class TestFigures13And14:
    @pytest.fixture(scope="class")
    def sweep(self):
        return figures.scheme_context_sweep(sequence_ks=(32, 256, 512))

    def test_slimpipe_highest_mfu_everywhere(self, sweep):
        for seq_k in (32, 256, 512):
            slim = sweep.row("slimpipe", seq_k)
            assert slim.feasible
            for scheme in ("zb-v", "v-half", "1f1b", "interleaved-1f1b"):
                other = sweep.row(scheme, seq_k)
                if other.feasible:
                    assert slim.mfu > other.mfu

    def test_slimpipe_lowest_memory_everywhere(self, sweep):
        for seq_k in (32, 256):
            slim = sweep.row("slimpipe", seq_k)
            for scheme in ("zb-v", "v-half", "1f1b", "interleaved-1f1b"):
                other = sweep.row(scheme, seq_k)
                if other.feasible:
                    assert slim.peak_memory_gib < other.peak_memory_gib

    def test_zero_bubble_schemes_oom_first(self, sweep):
        assert not sweep.row("zb-v", 512).feasible
        assert not sweep.row("v-half", 512).feasible
        assert sweep.row("slimpipe", 512).feasible

    def test_default_1f1b_survives_256k_but_not_512k(self, sweep):
        assert sweep.row("1f1b", 256).feasible
        assert not sweep.row("1f1b", 512).feasible

    def test_figure13_and_14_share_the_sweep(self):
        a = figures.figure13_scheme_mfu(sequence_ks=(32,))
        b = figures.figure14_scheme_memory(sequence_ks=(32,))
        assert {r.scheme for r in a.rows} == {r.scheme for r in b.rows}
