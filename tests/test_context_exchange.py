"""Tests for attention context exchange (Section 4.2, Figure 8, Eq. 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context_exchange import (
    ExchangeTransfer,
    balance_workloads,
    concurrent_kv_slices,
    embedding_bytes_per_slice,
    exchange_volume_bound,
    exchange_volume_per_microbatch,
)
from repro.model.config import LLAMA_13B, LLAMA_70B


class TestExchangeTransfer:
    def test_requires_distinct_devices(self):
        with pytest.raises(ValueError):
            ExchangeTransfer(source=1, target=1, kv_slices=1.0)

    def test_requires_positive_kv(self):
        with pytest.raises(ValueError):
            ExchangeTransfer(source=0, target=1, kv_slices=0.0)

    def test_requires_non_negative_devices(self):
        with pytest.raises(ValueError):
            ExchangeTransfer(source=-1, target=1, kv_slices=1.0)


class TestConcurrentKvSlices:
    def test_arithmetic_progression_in_steady_state(self):
        """Away from junctures, loads are consecutive: heaviest - lightest = p - 1."""
        loads = concurrent_kv_slices(num_devices=4, phase_offset=4, num_slices=16)
        assert loads == [8, 7, 6, 5]
        assert max(loads) - min(loads) == 3

    def test_juncture_imbalance_can_reach_n_minus_1(self):
        """At a microbatch juncture the spread grows towards n - 1 (Section 4.2.1)."""
        n = 8
        loads = concurrent_kv_slices(num_devices=4, phase_offset=n - 3, num_slices=n)
        assert max(loads) - min(loads) > 3

    def test_wraps_to_next_microbatch(self):
        loads = concurrent_kv_slices(num_devices=2, phase_offset=7, num_slices=8)
        assert all(1 <= load <= 8 for load in loads)

    def test_validation(self):
        with pytest.raises(ValueError):
            concurrent_kv_slices(0, 0, 8)
        with pytest.raises(ValueError):
            concurrent_kv_slices(4, 0, 2)
        with pytest.raises(ValueError):
            concurrent_kv_slices(4, -1, 8)


class TestBalanceWorkloads:
    def test_already_balanced_produces_no_transfers(self):
        plan = balance_workloads([5.0, 5.0, 5.0, 5.0])
        assert plan.transfers == []
        assert plan.balanced == plan.original

    def test_conserves_total_workload(self):
        plan = balance_workloads([8, 7, 6, 5])
        assert sum(plan.balanced) == pytest.approx(sum(plan.original))

    def test_residual_imbalance_at_most_one_slice(self):
        """Section 4.2.2: after exchange the spread is at most one KV slice."""
        plan = balance_workloads([8, 7, 6, 5])
        assert plan.max_imbalance_after <= 1.0 + 1e-9
        assert plan.max_imbalance_after < plan.max_imbalance_before

    def test_juncture_imbalance_also_balanced(self):
        loads = concurrent_kv_slices(num_devices=4, phase_offset=6, num_slices=8)
        plan = balance_workloads(loads)
        assert plan.max_imbalance_after <= 1.0 + 1e-9

    def test_transfers_go_from_heavy_to_light(self):
        plan = balance_workloads([10, 2, 2, 2])
        for t in plan.transfers:
            assert plan.original[t.source] > plan.original[t.target]

    def test_rejects_negative_workloads(self):
        with pytest.raises(ValueError):
            balance_workloads([1.0, -2.0])

    def test_empty_is_noop(self):
        plan = balance_workloads([])
        assert plan.num_devices == 0
        assert plan.transferred_kv_slices() == 0.0

    def test_transfer_queries(self):
        plan = balance_workloads([9, 1])
        assert plan.transfers_from(0)
        assert plan.transfers_to(1)
        assert not plan.transfers_from(1)

    @settings(max_examples=50, deadline=None)
    @given(
        loads=st.lists(
            st.floats(min_value=0.0, max_value=64.0, allow_nan=False),
            min_size=1,
            max_size=16,
        )
    )
    def test_property_balanced_within_one_and_conserved(self, loads):
        plan = balance_workloads(loads)
        assert sum(plan.balanced) == pytest.approx(sum(loads), rel=1e-9, abs=1e-6)
        # Either already within one slice or brought within one slice.
        assert plan.max_imbalance_after <= max(1.0, plan.max_imbalance_before) + 1e-9
        if plan.max_imbalance_before > 1.0:
            assert plan.max_imbalance_after <= 1.0 + 1e-6


class TestExchangeVolume:
    def test_volume_below_bound(self):
        for p, n in [(4, 8), (8, 16), (8, 32), (16, 64)]:
            vol = exchange_volume_per_microbatch(LLAMA_13B, 256 * 1024, n, p, 8)
            bound = exchange_volume_bound(LLAMA_13B, 256 * 1024, n, p, 8)
            assert vol <= bound + 1e-6

    def test_bound_independent_of_p_and_n_to_first_order(self):
        """Eq. 2: the bound is at most 2 L M_h whatever p and n are."""
        seq = 128 * 1024
        m_h = seq * LLAMA_13B.hidden_size * 2 / 8
        ceiling = 2.0 * LLAMA_13B.num_layers * m_h
        for p, n in [(2, 4), (4, 16), (8, 64), (16, 64)]:
            assert exchange_volume_bound(LLAMA_13B, seq, n, p, 8) <= ceiling + 1e-6

    def test_exact_small_case(self):
        """Hand-checked p=2, n=4 case."""
        model = LLAMA_13B
        seq, n, p, t = 1024, 4, 2, 1
        slice_bytes = (model.num_layers / p) * (seq * model.hidden_size * 2) / n
        expected = (2 * n + 2 * (n - p + 1) * 0 + 2 * (p - 1) * 1) * slice_bytes
        assert exchange_volume_per_microbatch(model, seq, n, p, t) == pytest.approx(expected)

    def test_single_device_exchanges_nothing(self):
        assert exchange_volume_per_microbatch(LLAMA_13B, 1024, 4, 1) == 0.0

    def test_needs_enough_slices(self):
        with pytest.raises(ValueError):
            exchange_volume_per_microbatch(LLAMA_13B, 1024, 2, 4)
        with pytest.raises(ValueError):
            exchange_volume_bound(LLAMA_13B, 1024, 2, 4)

    def test_tensor_parallelism_shrinks_volume(self):
        v1 = exchange_volume_per_microbatch(LLAMA_70B, 65536, 16, 4, 1)
        v8 = exchange_volume_per_microbatch(LLAMA_70B, 65536, 16, 4, 8)
        assert v8 == pytest.approx(v1 / 8)

    @settings(max_examples=40, deadline=None)
    @given(
        p=st.integers(min_value=2, max_value=16),
        slices_per_device=st.integers(min_value=1, max_value=8),
        seq_k=st.integers(min_value=1, max_value=512),
    )
    def test_property_volume_below_bound(self, p, slices_per_device, seq_k):
        n = p * slices_per_device
        seq = seq_k * 1024
        vol = exchange_volume_per_microbatch(LLAMA_70B, seq, n, p, 8)
        bound = exchange_volume_bound(LLAMA_70B, seq, n, p, 8)
        # The bound can be attained exactly (odd p and n), so allow fp rounding.
        assert 0.0 <= vol <= bound * (1.0 + 1e-9)


class TestEmbeddingBytesPerSlice:
    def test_matches_definition(self):
        model = LLAMA_13B
        seq, n, p, t = 4096, 8, 4, 2
        expected = (model.num_layers / p) * (seq * model.hidden_size * 2 / t) / n
        assert embedding_bytes_per_slice(model, seq, n, p, t) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            embedding_bytes_per_slice(LLAMA_13B, 4096, 0, 4)
