"""Tests for the continuous-batching scheduler (repro.serving.batcher)."""

import pytest

from repro.serving.batcher import BatcherConfig, ContinuousBatcher, Phase, RequestState
from repro.serving.metrics import RequestRecord
from repro.serving.paged_kv import PagedKVAllocator
from repro.serving.workload import Request


def make_state(rid, prompt, output, arrival=0.0, priority=0):
    return RequestState(
        record=RequestRecord(Request(rid, arrival, prompt, output, priority))
    )


def drain(batcher, max_iterations=10_000):
    """Run plan/commit cycles until the batcher is idle; returns iterations."""
    now = 0.0
    iterations = 0
    while batcher.has_work:
        plan = batcher.plan()
        assert not plan.empty, "batcher stalled with queued work"
        now += 1.0
        batcher.commit(plan, now)
        iterations += 1
        assert iterations < max_iterations
    return iterations


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatcherConfig(policy="lifo")
        with pytest.raises(ValueError):
            BatcherConfig(max_batch_tokens=0)
        with pytest.raises(ValueError):
            BatcherConfig(min_prefill_chunk_tokens=0)

    def test_pool_roles_exclusive(self):
        alloc = PagedKVAllocator(16, 16)
        with pytest.raises(ValueError):
            ContinuousBatcher(alloc, prefill_only=True, decode_only=True)


class TestAdmission:
    def test_token_budget_respected(self):
        alloc = PagedKVAllocator(total_blocks=64, block_tokens=16)
        batcher = ContinuousBatcher(
            alloc,
            BatcherConfig(
                max_batch_tokens=150, prefill_chunk_tokens=100, min_prefill_chunk_tokens=1
            ),
        )
        for rid in range(3):
            batcher.enqueue(make_state(rid, prompt=100, output=4))
        plan = batcher.plan()
        assert [(s.request.request_id, c) for s, c in plan.prefill] == [(0, 100), (1, 50)]
        assert plan.batch_tokens <= 150

    def test_fcfs_order(self):
        alloc = PagedKVAllocator(64, 16)
        batcher = ContinuousBatcher(alloc, BatcherConfig(max_batch_tokens=64))
        batcher.enqueue(make_state(0, 64, 2, arrival=0.0))
        batcher.enqueue(make_state(1, 64, 2, arrival=1.0, priority=-5))
        plan = batcher.plan()
        # FCFS ignores priority: request 0 arrived first.
        assert plan.prefill[0][0].request.request_id == 0

    def test_priority_order(self):
        alloc = PagedKVAllocator(64, 16)
        batcher = ContinuousBatcher(
            alloc, BatcherConfig(max_batch_tokens=64, policy="priority")
        )
        batcher.enqueue(make_state(0, 64, 2, arrival=0.0))
        batcher.enqueue(make_state(1, 64, 2, arrival=1.0, priority=-5))
        plan = batcher.plan()
        assert plan.prefill[0][0].request.request_id == 1

    def test_oversized_request_rejected(self):
        alloc = PagedKVAllocator(total_blocks=4, block_tokens=16)
        batcher = ContinuousBatcher(alloc)
        with pytest.raises(ValueError):
            batcher.enqueue(make_state(0, prompt=100, output=10))

    def test_max_running_requests(self):
        alloc = PagedKVAllocator(64, 16)
        batcher = ContinuousBatcher(
            alloc, BatcherConfig(max_batch_tokens=1024, max_running_requests=2)
        )
        for rid in range(4):
            batcher.enqueue(make_state(rid, 16, 2))
        plan = batcher.plan()
        assert len(plan.prefill) == 2


class TestLifecycle:
    def test_chunked_prefill_then_decode(self):
        alloc = PagedKVAllocator(64, 16)
        batcher = ContinuousBatcher(
            alloc,
            BatcherConfig(
                max_batch_tokens=64, prefill_chunk_tokens=64, min_prefill_chunk_tokens=1
            ),
        )
        state = make_state(0, prompt=150, output=3)
        batcher.enqueue(state)
        plan = batcher.plan()
        assert plan.prefill == [(state, 64)]
        batcher.commit(plan, 1.0)
        assert state.phase is Phase.PREFILL and state.prefilled == 64
        batcher.commit(batcher.plan(), 2.0)
        assert state.prefilled == 128
        batcher.commit(batcher.plan(), 3.0)
        # Prefill complete: first token sampled, decode begins.
        assert state.phase is Phase.DECODE
        assert state.record.first_token_time == 3.0
        assert state.decoded == 1
        plan = batcher.plan()
        assert plan.decode == [state]
        batcher.commit(plan, 4.0)
        batcher.commit(batcher.plan(), 5.0)
        assert state.phase is Phase.FINISHED
        assert state.record.finish_time == 5.0
        assert alloc.used_blocks == 0

    def test_prefill_only_handoff(self):
        alloc = PagedKVAllocator(64, 16)
        batcher = ContinuousBatcher(
            alloc, BatcherConfig(max_batch_tokens=64), prefill_only=True
        )
        state = make_state(0, prompt=32, output=8)
        batcher.enqueue(state)
        departed = batcher.commit(batcher.plan(), 1.0)
        assert departed == [state]
        assert state.phase is Phase.HANDOFF
        assert state.record.first_token_time == 1.0
        assert state.record.finish_time is None
        assert alloc.used_blocks == 0

    def test_prefill_only_single_token_output_finishes(self):
        alloc = PagedKVAllocator(64, 16)
        batcher = ContinuousBatcher(
            alloc, BatcherConfig(max_batch_tokens=64), prefill_only=True
        )
        state = make_state(0, prompt=32, output=1)
        batcher.enqueue(state)
        batcher.commit(batcher.plan(), 1.0)
        assert state.phase is Phase.FINISHED
        assert state.record.finish_time == 1.0

    def test_decode_only_admission_reserves_context(self):
        alloc = PagedKVAllocator(total_blocks=8, block_tokens=16)
        batcher = ContinuousBatcher(alloc, decode_only=True)
        state = RequestState(
            record=RequestRecord(Request(0, 0.0, 100, 4)),
            prefilled=100,
            decoded=1,
            pool_arrival=5.0,
        )
        state.record.first_token_time = 5.0
        batcher.enqueue(state)
        plan = batcher.plan()
        assert plan.decode == [state]
        assert alloc.used_blocks == 7  # ceil(101 / 16)
        drain(batcher)
        assert state.record.finish_time is not None


class TestPreemption:
    def _pressured_batcher(self):
        # 4 blocks of 4 tokens: two requests of prompt 8 fill the pool, and
        # decode growth forces a preemption.
        alloc = PagedKVAllocator(total_blocks=4, block_tokens=4)
        batcher = ContinuousBatcher(
            alloc,
            BatcherConfig(
                max_batch_tokens=16,
                prefill_chunk_tokens=8,
                min_prefill_chunk_tokens=1,
                admission_watermark=0.0,
            ),
        )
        return alloc, batcher

    def test_decode_growth_preempts_newest(self):
        alloc, batcher = self._pressured_batcher()
        first = make_state(0, prompt=8, output=8)
        second = make_state(1, prompt=8, output=8)
        batcher.enqueue(first)
        batcher.enqueue(second)
        batcher.commit(batcher.plan(), 1.0)  # both prefilled (8 + 8 tokens)
        assert first.phase is Phase.DECODE and second.phase is Phase.DECODE
        plan = batcher.plan()  # growing first's context needs a 3rd block
        assert second.phase is Phase.WAITING  # newest request was evicted
        assert second in batcher.waiting
        assert plan.decode == [first]
        assert batcher.preemptions == 1
        assert second.record.preemptions == 1
        assert alloc.evictions == 1
        # The victim must re-prefill its whole context on resume.
        assert second.prefilled == 0
        assert second.prefill_target == 8 + second.decoded

    def test_drain_to_completion_with_preemptions(self):
        _, batcher = self._pressured_batcher()
        states = [make_state(rid, prompt=8, output=8) for rid in range(3)]
        for state in states:
            batcher.enqueue(state)
        drain(batcher)
        assert all(s.phase is Phase.FINISHED for s in states)
        assert batcher.preemptions >= 1
        assert (
            batcher.tokens_admitted
            == batcher.tokens_prefilled + batcher.tokens_preempted_requeued
        )

    def test_decode_pool_accounting_survives_repeated_preemption(self):
        # A decode-only pool preempting the same context repeatedly models
        # KV re-fetch, not re-prefill: the conservation law must stay exact.
        alloc = PagedKVAllocator(total_blocks=8, block_tokens=4)
        batcher = ContinuousBatcher(alloc, decode_only=True)
        states = []
        for rid in range(3):
            state = RequestState(
                record=RequestRecord(Request(rid, 0.0, 10, 14)),
                prefilled=10,
                decoded=1,
            )
            state.record.first_token_time = 0.0
            batcher.enqueue(state)
            states.append(state)
        drain(batcher)
        assert all(s.phase is Phase.FINISHED for s in states)
        assert batcher.preemptions >= 2
        assert (
            batcher.tokens_admitted
            == batcher.tokens_prefilled + batcher.tokens_preempted_requeued
        )

    def test_token_accounting_without_preemption(self):
        alloc = PagedKVAllocator(256, 16)
        batcher = ContinuousBatcher(alloc, BatcherConfig(max_batch_tokens=64))
        for rid in range(5):
            batcher.enqueue(make_state(rid, prompt=100, output=8))
        drain(batcher)
        assert batcher.preemptions == 0
        assert batcher.tokens_admitted == 500
        assert batcher.tokens_prefilled == 500
        assert batcher.tokens_preempted_requeued == 0
