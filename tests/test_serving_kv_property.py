"""Property-style tests: ChunkedKVCache reuse invariants under serving load.

The training-side tests pin the chunk-reuse invariants for the pipeline's
regular acquire/release pattern (backward of one microbatch frees exactly
what the next forward needs).  Serving stresses the same pool much harder:
many concurrent requests reserve and release blocks in arbitrary
interleavings as contexts grow, finish and get preempted.  These tests
drive randomized serving-shaped access patterns and assert the invariants
the paper's Section 5 design guarantees for uniform chunks:

* **conservation** — every chunk ever allocated is either live or free;
* **zero fragmentation** — a new buffer is only ever allocated when the
  free list is empty, so the number of distinct buffers equals the peak
  number of simultaneously live chunks;
* **steady-state stability** — once concurrency has peaked, continued
  churn (requests finishing, new ones admitted) allocates nothing new.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kv_cache import ChunkedKVCache
from repro.serving.paged_kv import PagedKVAllocator


def _check_conservation(cache: ChunkedKVCache) -> None:
    assert cache.live_chunks + cache.free_chunks == cache.total_chunks


class TestInterleavedRequests:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_zero_fragmentation_under_random_churn(self, seed):
        rng = random.Random(seed)
        cache = ChunkedKVCache()
        live = []
        next_block = {}
        for _ in range(400):
            request = rng.randrange(24)
            if rng.random() < 0.55:
                block = next_block.get(request, 0)
                cache.acquire((request, block))
                next_block[request] = block + 1
                live.append((request, block))
            elif live:
                key = live.pop(rng.randrange(len(live)))
                cache.release(key)
            _check_conservation(cache)
            # Zero fragmentation: distinct buffers == peak concurrency.
            assert cache.total_chunks == cache.stats().peak_live_chunks

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_steady_state_chunk_count_is_stable(self, seed):
        rng = random.Random(seed)
        cache = ChunkedKVCache()
        concurrency = 16
        blocks_per_request = 4
        # Warm phase: admit `concurrency` requests of equal context length.
        generation = 0
        live_requests = [
            [(generation, r, b) for b in range(blocks_per_request)]
            for r in range(concurrency)
        ]
        for table in live_requests:
            for key in table:
                cache.acquire(key)
        steady_total = cache.total_chunks
        # Steady phase: requests finish and are replaced, in random order —
        # the serving analogue of "backward frees what the next forward
        # needs".  No new buffer may ever be allocated.
        for step in range(200):
            index = rng.randrange(len(live_requests))
            for key in live_requests[index]:
                cache.release(key)
            generation += 1
            replacement = [
                (generation, step, b) for b in range(blocks_per_request)
            ]
            for key in replacement:
                cache.acquire(key)
            live_requests[index] = replacement
            assert cache.total_chunks == steady_total
            _check_conservation(cache)
        stats = cache.stats()
        assert stats.reuses == 200 * blocks_per_request
        assert stats.reuse_fraction > 0.7

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_paged_allocator_inherits_the_invariants(self, seed):
        rng = random.Random(seed)
        alloc = PagedKVAllocator(total_blocks=64, block_tokens=16)
        tokens = {}
        for _ in range(300):
            action = rng.random()
            if action < 0.45 or not tokens:
                request = rng.randrange(100)
                if request in tokens:
                    continue
                want = rng.randrange(1, 12 * 16)
                if alloc.reserve(request, want):
                    tokens[request] = want
            elif action < 0.75:
                request = rng.choice(sorted(tokens))
                grown = tokens[request] + rng.randrange(1, 48)
                if alloc.reserve(request, grown):
                    tokens[request] = grown
            else:
                request = rng.choice(sorted(tokens))
                if rng.random() < 0.3:
                    alloc.evict(request)
                else:
                    alloc.release(request)
                del tokens[request]
            # Block-table sizes track reserved tokens exactly.
            assert alloc.stored_tokens == sum(tokens.values())
            assert alloc.used_blocks == sum(
                -(-t // alloc.block_tokens) for t in tokens.values()
            )
            assert 0 <= alloc.free_blocks <= alloc.total_blocks
            stats = alloc.stats()
            _check_conservation(alloc._cache)
            assert stats.cache.peak_live_chunks == alloc._cache.total_chunks
        # Releasing everything returns the pool to empty without losing chunks.
        for request in sorted(tokens):
            alloc.release(request)
        assert alloc.used_blocks == 0
        _check_conservation(alloc._cache)
