"""Gradient-equivalence tests for the SlimPipe numeric pipeline runner.

These are the correctness results of the reproduction: however the sequence is
sliced, however many pipeline devices the layers are spread over, and whatever
combination of context exchange and vocabulary parallelism is enabled, the
loss and every parameter gradient must equal the unsliced single-device
reference to floating-point tolerance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context_exchange import exchange_volume_bound
from repro.numerics.model import ModelParams, NumericModelConfig, ReferenceModel
from repro.numerics.pipeline_runner import SlimPipeNumericRunner, SlimPipeRunnerOptions

CONFIG = NumericModelConfig(
    num_layers=4, hidden_size=16, num_heads=4, num_groups=2, ffn_size=24, vocab_size=32
)
PARAMS = ModelParams.init(CONFIG, seed=1)
RNG = np.random.default_rng(42)
SEQ = 12
TOKENS = RNG.integers(0, CONFIG.vocab_size, size=SEQ)
TARGETS = RNG.integers(0, CONFIG.vocab_size, size=SEQ)
REF_LOSS, REF_GRADS = ReferenceModel(PARAMS).loss_and_gradients(TOKENS, TARGETS)


def assert_matches_reference(loss, grads, rtol=1e-9, atol=1e-11):
    assert loss == pytest.approx(REF_LOSS, rel=1e-10)
    reference = REF_GRADS.flatten()
    candidate = grads.flatten()
    assert reference.keys() == candidate.keys()
    for name in reference:
        np.testing.assert_allclose(
            candidate[name], reference[name], rtol=rtol, atol=atol, err_msg=name
        )


class TestGradientEquivalence:
    @pytest.mark.parametrize("num_devices", [1, 2, 4])
    @pytest.mark.parametrize("num_slices", [1, 2, 4, 6])
    def test_matches_reference_across_slicing(self, num_devices, num_slices):
        runner = SlimPipeNumericRunner(
            PARAMS,
            num_devices=num_devices,
            num_slices=num_slices,
            options=SlimPipeRunnerOptions(context_exchange=False, vocab_parallel=False),
        )
        loss, grads = runner.loss_and_gradients(TOKENS, TARGETS)
        assert_matches_reference(loss, grads)

    @pytest.mark.parametrize("context_exchange", [False, True])
    @pytest.mark.parametrize("vocab_parallel", [False, True])
    def test_matches_reference_with_all_features(self, context_exchange, vocab_parallel):
        runner = SlimPipeNumericRunner(
            PARAMS,
            num_devices=4,
            num_slices=6,
            options=SlimPipeRunnerOptions(
                context_exchange=context_exchange, vocab_parallel=vocab_parallel
            ),
        )
        loss, grads = runner.loss_and_gradients(TOKENS, TARGETS)
        assert_matches_reference(loss, grads)

    def test_uneven_slice_lengths_still_exact(self):
        """Sequence length not divisible by n: uniform slicing spreads the remainder."""
        runner = SlimPipeNumericRunner(PARAMS, num_devices=2, num_slices=5)
        loss, grads = runner.loss_and_gradients(TOKENS, TARGETS)
        assert_matches_reference(loss, grads)

    def test_multiple_microbatches_match_averaged_reference(self):
        rng = np.random.default_rng(7)
        tokens = rng.integers(0, CONFIG.vocab_size, size=(3, SEQ))
        targets = rng.integers(0, CONFIG.vocab_size, size=(3, SEQ))
        runner = SlimPipeNumericRunner(PARAMS, num_devices=4, num_slices=4)
        loss, grads = runner.loss_and_gradients(tokens, targets)

        ref = ReferenceModel(PARAMS)
        ref_losses, ref_flat = [], None
        for mb in range(3):
            l, g = ref.loss_and_gradients(tokens[mb], targets[mb])
            ref_losses.append(l)
            flat = g.flatten()
            if ref_flat is None:
                ref_flat = {k: v.copy() for k, v in flat.items()}
            else:
                for k in ref_flat:
                    ref_flat[k] += flat[k]
        expected_loss = float(np.mean(ref_losses))
        assert loss == pytest.approx(expected_loss, rel=1e-10)
        for name, value in grads.flatten().items():
            np.testing.assert_allclose(
                value, ref_flat[name] / 3.0, rtol=1e-9, atol=1e-11, err_msg=name
            )

    @settings(max_examples=10, deadline=None)
    @given(
        num_devices=st.sampled_from([1, 2, 4]),
        num_slices=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_property_random_inputs_match_reference(self, num_devices, num_slices, seed):
        rng = np.random.default_rng(seed)
        tokens = rng.integers(0, CONFIG.vocab_size, size=10)
        targets = rng.integers(0, CONFIG.vocab_size, size=10)
        ref_loss, ref_grads = ReferenceModel(PARAMS).loss_and_gradients(tokens, targets)
        runner = SlimPipeNumericRunner(PARAMS, num_devices=num_devices, num_slices=num_slices)
        loss, grads = runner.loss_and_gradients(tokens, targets)
        assert loss == pytest.approx(ref_loss, rel=1e-9)
        ref_flat = ref_grads.flatten()
        for name, value in grads.flatten().items():
            np.testing.assert_allclose(
                value, ref_flat[name], rtol=1e-8, atol=1e-10, err_msg=name
            )


class TestRunnerValidation:
    def test_layers_must_divide_devices(self):
        with pytest.raises(ValueError):
            SlimPipeNumericRunner(PARAMS, num_devices=3, num_slices=3)

    def test_positive_arguments(self):
        with pytest.raises(ValueError):
            SlimPipeNumericRunner(PARAMS, num_devices=0, num_slices=2)
        with pytest.raises(ValueError):
            SlimPipeNumericRunner(PARAMS, num_devices=2, num_slices=0)

    def test_token_target_shape_mismatch(self):
        runner = SlimPipeNumericRunner(PARAMS, num_devices=2, num_slices=2)
        with pytest.raises(ValueError):
            runner.loss_and_gradients(TOKENS, TARGETS[:-1])

    def test_rank_3_tokens_rejected(self):
        runner = SlimPipeNumericRunner(PARAMS, num_devices=2, num_slices=2)
        bad = np.zeros((2, 2, 3), dtype=int)
        with pytest.raises(ValueError):
            runner.loss_and_gradients(bad, bad)


class TestRunnerTelemetry:
    def test_kv_chunks_all_released(self):
        runner = SlimPipeNumericRunner(PARAMS, num_devices=4, num_slices=6)
        runner.loss_and_gradients(TOKENS, TARGETS)
        for state in runner.devices:
            assert state.kv_cache.live_chunks == 0
            assert not state.kv_grad_accumulators

    def test_peak_live_chunks_equals_slices_times_local_layers(self):
        """Each device's KV cache peaks at (layers it hosts) x (slices)."""
        runner = SlimPipeNumericRunner(PARAMS, num_devices=2, num_slices=4)
        runner.loss_and_gradients(TOKENS, TARGETS)
        layers_per_device = CONFIG.num_layers // 2
        assert runner.telemetry.peak_live_kv_chunks == [4 * layers_per_device] * 2

    def test_chunk_reuse_across_microbatches(self):
        """The second microbatch reuses chunks freed by the first (Section 5)."""
        rng = np.random.default_rng(3)
        tokens = rng.integers(0, CONFIG.vocab_size, size=(2, SEQ))
        targets = rng.integers(0, CONFIG.vocab_size, size=(2, SEQ))
        runner = SlimPipeNumericRunner(PARAMS, num_devices=2, num_slices=4)
        runner.loss_and_gradients(tokens, targets)
        assert all(f >= 0.5 for f in runner.telemetry.kv_chunk_reuse_fraction)

    def test_exchange_bytes_counted_and_bounded(self):
        """Counted exchange traffic stays within the Eq. 2 ceiling."""
        runner = SlimPipeNumericRunner(
            PARAMS,
            num_devices=4,
            num_slices=4,
            options=SlimPipeRunnerOptions(context_exchange=True, vocab_parallel=False),
        )
        runner.loss_and_gradients(TOKENS, TARGETS)
        assert runner.telemetry.exchanged_bytes > 0.0

    def test_no_exchange_bytes_when_disabled(self):
        runner = SlimPipeNumericRunner(
            PARAMS,
            num_devices=4,
            num_slices=4,
            options=SlimPipeRunnerOptions(context_exchange=False),
        )
        runner.loss_and_gradients(TOKENS, TARGETS)
        assert runner.telemetry.exchanged_bytes == 0.0

    def test_slice_lengths_recorded(self):
        runner = SlimPipeNumericRunner(PARAMS, num_devices=2, num_slices=5)
        runner.loss_and_gradients(TOKENS, TARGETS)
        assert sum(runner.telemetry.slice_lengths) == SEQ
        assert max(runner.telemetry.slice_lengths) - min(runner.telemetry.slice_lengths) <= 1


class TestTraining:
    def test_one_sgd_step_with_runner_gradients_decreases_loss(self):
        """End-to-end: gradients from the sliced multi-device runner train the model."""
        config = NumericModelConfig(num_layers=2, hidden_size=16, num_heads=4, num_groups=2, ffn_size=24, vocab_size=32)
        params = ModelParams.init(config, seed=9)
        rng = np.random.default_rng(10)
        tokens = rng.integers(0, config.vocab_size, size=16)
        targets = rng.integers(0, config.vocab_size, size=16)
        runner = SlimPipeNumericRunner(params, num_devices=2, num_slices=4)
        loss0, grads = runner.loss_and_gradients(tokens, targets)
        lr = 0.5
        params.embedding -= lr * grads.embedding
        params.final_norm -= lr * grads.final_norm
        params.output_weight -= lr * grads.output_weight
        for layer, lg in zip(params.layers, grads.layers):
            for name, grad in lg.as_dict().items():
                getattr(layer, name).__isub__(lr * grad)
        loss1, _ = runner.loss_and_gradients(tokens, targets)
        assert loss1 < loss0
