"""Tests for declarative sweep specifications and stable point hashing."""

import pytest

from repro.sweep.spec import (
    SweepAxis,
    SweepSpec,
    canonical_json,
    point_key,
    stable_hash,
)


def _spec(**overrides):
    kwargs = dict(
        name="demo",
        evaluator="scheme-point",
        axes={"a": (1, 2, 3), "b": ("x", "y")},
        base={"fixed": 7},
    )
    kwargs.update(overrides)
    return SweepSpec.make(**kwargs)


class TestSweepAxis:
    def test_requires_values(self):
        with pytest.raises(ValueError, match="at least one value"):
            SweepAxis("a", ())

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="repeats value"):
            SweepAxis("a", (1, 2, 1))

    def test_rejects_non_scalars(self):
        with pytest.raises(ValueError, match="JSON scalars"):
            SweepAxis("a", ([1, 2],))


class TestSweepSpec:
    def test_expand_is_the_cartesian_product(self):
        spec = _spec()
        points = spec.expand()
        assert spec.num_points == len(points) == 6
        assert points[0] == {"fixed": 7, "a": 1, "b": "x"}
        # Outer axes vary slowest, like nested for-loops.
        assert [p["a"] for p in points] == [1, 1, 2, 2, 3, 3]
        assert [p["b"] for p in points] == ["x", "y"] * 3

    def test_base_merged_into_every_point(self):
        assert all(p["fixed"] == 7 for p in _spec().expand())

    def test_axis_base_clash_rejected(self):
        with pytest.raises(ValueError, match="clashes with an axis"):
            _spec(base={"a": 1})

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate axis names"):
            SweepSpec(
                name="demo",
                evaluator="e",
                axes=(SweepAxis("a", (1,)), SweepAxis("a", (2,))),
            )

    def test_describe_lists_axes_and_base(self):
        text = _spec().describe()
        assert "axis a (3): 1, 2, 3" in text
        assert "base fixed = 7" in text
        assert "6 points" in text


class TestStableHash:
    def test_canonical_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_point_key_stable_across_processes(self):
        # A literal pin: the cache format relies on this never changing.
        key = point_key("fig12-cell", {"model": "llama-70b", "sequence_k": 64})
        assert key == stable_hash(
            {
                "evaluator": "fig12-cell",
                "point": {"model": "llama-70b", "sequence_k": 64},
            }
        )
        assert len(key) == 64 and int(key, 16) >= 0

    def test_point_key_distinguishes_evaluator_and_point(self):
        point = {"x": 1}
        assert point_key("e1", point) != point_key("e2", point)
        assert point_key("e1", point) != point_key("e1", {"x": 2})
