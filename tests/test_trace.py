"""Tests for timeline export (Chrome trace JSON, utilisation summaries)."""

import json

import pytest

from repro.core.schedule import build_slimpipe_schedule
from repro.sim.engine import SimulationEngine, UniformCostProvider
from repro.sim.trace import to_chrome_trace, utilization_summary, write_chrome_trace


@pytest.fixture(scope="module")
def timeline():
    schedule = build_slimpipe_schedule(4, 2, 8)
    return SimulationEngine(schedule, UniformCostProvider(comm=0.01)).run()


class TestChromeTrace:
    def test_one_event_per_pass_plus_metadata(self, timeline):
        trace = to_chrome_trace(timeline)
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        metadata = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert len(complete) == len(timeline.spans)
        assert len(metadata) == timeline.num_devices

    def test_events_carry_positions_and_durations(self, timeline):
        trace = to_chrome_trace(timeline, time_unit_us=1e3)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        for event in events:
            assert event["dur"] > 0
            assert event["ts"] >= 0
            assert event["tid"] < timeline.num_devices
            assert "slice" in event["args"]

    def test_names_mention_kind_and_slice(self, timeline):
        trace = to_chrome_trace(timeline)
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert any(name.startswith("forward") and "slice" in name for name in names)
        assert any(name.startswith("backward") for name in names)

    def test_invalid_time_unit(self, timeline):
        with pytest.raises(ValueError):
            to_chrome_trace(timeline, time_unit_us=0)

    def test_write_round_trips_through_json(self, timeline, tmp_path):
        path = tmp_path / "trace.json"
        returned = write_chrome_trace(timeline, str(path))
        assert returned == str(path)
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) == len(to_chrome_trace(timeline)["traceEvents"])


class TestUtilizationSummary:
    def test_per_device_rows(self, timeline):
        summary = utilization_summary(timeline)
        assert len(summary) == timeline.num_devices
        for row in summary:
            assert 0.0 < row["utilization"] <= 1.0
            assert row["busy_seconds"] + row["idle_seconds"] == pytest.approx(
                timeline.makespan
            )
            assert row["passes"] > 0

    def test_matches_timeline_bubble_fraction(self, timeline):
        summary = utilization_summary(timeline)
        mean_utilization = sum(r["utilization"] for r in summary) / len(summary)
        assert 1.0 - mean_utilization == pytest.approx(timeline.bubble_fraction(), abs=1e-9)
