"""Property-based tests over every registered pipeline schedule.

Randomized (seeded, via hypothesis' deterministic ``derandomize`` mode)
pipeline shapes are executed through the discrete-event simulator with
per-pass durations normalised so that one microbatch costs the same total
compute under every schedule (one forward unit + two backward units per
microbatch per pipeline device, however the schedule splits its stages,
slices or backward halves).  Three invariants must hold for every schedule
the registry knows:

* the simulated bubble fraction is a proper fraction: ``0 <= bubble < 1``;
* the total busy time is invariant under schedule choice — a schedule
  reorders work, it must never create or destroy compute;
* interleaving is never worse than GPipe on bubbles (the whole point of
  virtual stages).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedules import available_schedules, build_schedule
from repro.sim.engine import SimulationEngine, UniformCostProvider

#: Forward costs 1 unit and backward 2 per (microbatch, device), so every
#: schedule's total busy time over p devices and m microbatches is 3 m p.
_TOTAL_UNITS_PER_MICROBATCH_DEVICE = 3.0


def _builder_kwargs(name: str, p: int) -> dict:
    if name == "interleaved-1f1b":
        return {"num_chunks": 2}
    if name == "terapipe":
        return {"num_slices": 2 * p}
    return {}


def _simulate(name: str, p: int, m: int):
    schedule = build_schedule(name, p, m, **_builder_kwargs(name, p))
    schedule.validate()
    # One pass is 1/(stages_per_device * num_slices) of a microbatch-device's
    # work, so durations are normalised by that unit count.
    units = schedule.stages_per_device * schedule.num_slices
    provider = UniformCostProvider(forward=1.0 / units, backward=2.0 / units)
    return SimulationEngine(schedule, provider).run()


# Shapes: p in [2, 6]; m a multiple of p (the interleaved schedule's own
# requirement) up to 3 p.
shapes = st.tuples(st.integers(2, 6), st.integers(1, 3)).map(
    lambda pair: (pair[0], pair[0] * pair[1])
)


@settings(max_examples=15, deadline=None, derandomize=True)
@given(shape=shapes)
def test_bubble_fraction_is_a_proper_fraction_for_every_schedule(shape):
    p, m = shape
    for name in available_schedules():
        timeline = _simulate(name, p, m)
        bubble = timeline.bubble_fraction()
        assert 0.0 <= bubble < 1.0, f"{name} at p={p}, m={m}: bubble={bubble}"


@settings(max_examples=15, deadline=None, derandomize=True)
@given(shape=shapes)
def test_total_compute_time_is_invariant_under_schedule_choice(shape):
    p, m = shape
    expected = _TOTAL_UNITS_PER_MICROBATCH_DEVICE * m * p
    for name in available_schedules():
        busy = _simulate(name, p, m).busy_time()
        assert abs(busy - expected) < 1e-6 * expected, (
            f"{name} at p={p}, m={m}: busy={busy}, expected={expected}"
        )


@settings(max_examples=15, deadline=None, derandomize=True)
@given(shape=shapes)
def test_interleaving_never_bubbles_more_than_gpipe(shape):
    p, m = shape
    interleaved = _simulate("interleaved-1f1b", p, m).bubble_fraction()
    gpipe = _simulate("gpipe", p, m).bubble_fraction()
    assert interleaved <= gpipe + 1e-9, (
        f"p={p}, m={m}: interleaved={interleaved} > gpipe={gpipe}"
    )
