"""Tail attribution and the two-run differ, pinned against goldens.

The attribution layer turns per-request span chains into population-level
answers — "where did the p99 go" and "why did the quantile move between
config A and B".  Both answers are pure functions of the deterministic
event stream, so this suite pins them twice over:

* **golden attribution tables** for three serving and three fleet
  scenarios (``tests/goldens/obs-attribution-*.json``, exact float
  equality via the JSON round-trip; regenerate deliberately with
  ``REPRO_REGEN_OBS_GOLDENS=1``), and
* **the acceptance diff**: turning shared-prefix KV caching off on the
  ``shared-system-prompt`` scenario must shift median TTFT, and the differ
  must attribute that shift predominantly to the prefill span while the
  prefix-token accounting collapses to zero.
"""

import json
import os
from pathlib import Path

import pytest

from repro.fleet.scenarios import FLEET_SCENARIO_REGISTRY, run_fleet_scenario
from repro.obs import (
    EventRecorder,
    build_attributions,
    diff_attributions,
    mean_breakdown,
    tail_attribution,
)
from repro.serving.scenarios import SCENARIO_REGISTRY, run_scenario

GOLDEN_DIR = Path(__file__).parent / "goldens"
REGEN = os.environ.get("REPRO_REGEN_OBS_GOLDENS") == "1"

SERVING_GOLDEN_SCENARIOS = ("chat", "bursty-long", "shared-system-prompt")
FLEET_GOLDEN_SCENARIOS = ("steady-chat", "unreliable", "flash-crowd")


def _serving_attributions(name, mode="colocated", **kwargs):
    recorder = EventRecorder()
    run_scenario(SCENARIO_REGISTRY[name], mode, seed=0, observe=recorder, **kwargs)
    return build_attributions(recorder)


def _fleet_attributions(name):
    recorder = EventRecorder()
    run_fleet_scenario(FLEET_SCENARIO_REGISTRY[name], seed=0, observe=recorder)
    return build_attributions(recorder)


def _golden_payload(attributions):
    tail = tail_attribution(attributions, metric="ttft", quantile=99.0)
    return {
        "mean_ttft_breakdown": mean_breakdown(attributions, metric="ttft"),
        "mean_e2e_breakdown": mean_breakdown(attributions, metric="e2e"),
        "tail": {
            "metric": tail.metric,
            "quantile": tail.quantile,
            "threshold": tail.threshold,
            "request_ids": tail.request_ids,
            "totals": tail.totals,
            "shares": tail.shares,
        },
    }


def _check_golden(name, payload):
    path = GOLDEN_DIR / f"obs-attribution-{name}.json"
    if REGEN:
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"missing golden {path.name}; regenerate with REPRO_REGEN_OBS_GOLDENS=1"
    )
    # JSON round-trips floats exactly, so this is bit-exact equality.
    assert json.loads(path.read_text()) == json.loads(json.dumps(payload))


@pytest.mark.parametrize("scenario_name", SERVING_GOLDEN_SCENARIOS)
def test_serving_attribution_matches_golden(scenario_name):
    payload = _golden_payload(_serving_attributions(scenario_name))
    _check_golden(f"serving-{scenario_name}", payload)


@pytest.mark.parametrize("scenario_name", FLEET_GOLDEN_SCENARIOS)
def test_fleet_attribution_matches_golden(scenario_name):
    payload = _golden_payload(_fleet_attributions(scenario_name))
    _check_golden(f"fleet-{scenario_name}", payload)


def test_tail_shares_sum_to_one():
    tail = tail_attribution(_serving_attributions("chat"), metric="ttft")
    assert sum(tail.shares.values()) == pytest.approx(1.0)
    assert tail.request_ids
    assert set(tail.totals) == set(tail.shares)


def test_prefix_cache_diff_attributes_prefill():
    # The acceptance bar for the differ: prefix caching on (scenario
    # default) vs off on the identical trace — the median-TTFT regression
    # must land predominantly in the prefill span, with the prefix-token
    # accounting dropping to zero.
    cached = _serving_attributions("shared-system-prompt")
    uncached = _serving_attributions("shared-system-prompt", prefix_caching=False)
    diff = diff_attributions(cached, uncached, metric="ttft", quantile=50.0)
    assert diff.delta > 0.0
    assert diff.dominant() == "prefill"
    assert diff.span_deltas["prefill"] > 0.5 * diff.delta
    assert diff.baseline_prefix_tokens > 0.0
    assert diff.current_prefix_tokens == 0.0


def test_diff_is_antisymmetric():
    cached = _serving_attributions("shared-system-prompt")
    uncached = _serving_attributions("shared-system-prompt", prefix_caching=False)
    forward = diff_attributions(cached, uncached)
    backward = diff_attributions(uncached, cached)
    assert forward.delta == -backward.delta
    for kind, delta in forward.span_deltas.items():
        assert backward.span_deltas[kind] == -delta


def test_attributions_survive_jsonl_round_trip(tmp_path):
    # Offline analysis must see the same spans as the live recorder.
    recorder = EventRecorder()
    run_scenario(SCENARIO_REGISTRY["chat"], "colocated", seed=0, observe=recorder)
    path = recorder.to_jsonl(str(tmp_path / "events.jsonl"))
    reloaded = EventRecorder.from_jsonl(path)
    assert build_attributions(reloaded) == build_attributions(recorder)
