"""Tests for the paged KV-cache allocator (repro.serving.paged_kv)."""

import pytest

from repro.serving.paged_kv import PagedKVAllocator, blocks_for_tokens


class TestBlocksForTokens:
    def test_rounding(self):
        assert blocks_for_tokens(0, 16) == 0
        assert blocks_for_tokens(1, 16) == 1
        assert blocks_for_tokens(16, 16) == 1
        assert blocks_for_tokens(17, 16) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            blocks_for_tokens(-1, 16)
        with pytest.raises(ValueError):
            blocks_for_tokens(4, 0)


class TestReserve:
    def test_lazy_block_growth(self):
        alloc = PagedKVAllocator(total_blocks=10, block_tokens=16)
        assert alloc.reserve("a", 10)
        assert alloc.used_blocks == 1
        assert alloc.reserve("a", 16)  # still one block
        assert alloc.used_blocks == 1
        assert alloc.reserve("a", 17)  # crosses a block boundary
        assert alloc.used_blocks == 2
        assert alloc.tokens_of("a") == 17
        assert len(alloc.block_table("a")) == 2

    def test_reserve_shrink_rejected(self):
        alloc = PagedKVAllocator(10, 16)
        alloc.reserve("a", 32)
        with pytest.raises(ValueError):
            alloc.reserve("a", 16)

    def test_capacity_refusal_has_no_side_effects(self):
        alloc = PagedKVAllocator(total_blocks=4, block_tokens=16)
        assert alloc.reserve("a", 48)  # 3 blocks
        assert not alloc.reserve("b", 32)  # needs 2, only 1 free
        assert alloc.used_blocks == 3
        assert not alloc.holds("b")
        assert alloc.reserve("b", 16)

    def test_release_frees_blocks(self):
        alloc = PagedKVAllocator(4, 16)
        alloc.reserve("a", 64)
        assert alloc.free_blocks == 0
        assert alloc.release("a") == 4
        assert alloc.free_blocks == 4
        assert alloc.release("a") == 0  # idempotent

    def test_evict_counts(self):
        alloc = PagedKVAllocator(4, 16)
        alloc.reserve("a", 16)
        alloc.evict("a")
        assert alloc.evictions == 1
        alloc.evict("missing")
        assert alloc.evictions == 1


class TestStats:
    def test_utilization_and_fragmentation(self):
        alloc = PagedKVAllocator(total_blocks=8, block_tokens=16)
        alloc.reserve("a", 24)  # 2 blocks, 24 of 32 slots
        stats = alloc.stats()
        assert stats.used_blocks == 2
        assert stats.free_blocks == 6
        assert stats.block_utilization == pytest.approx(0.25)
        assert stats.token_utilization == pytest.approx(24 / 128)
        assert stats.internal_fragmentation == pytest.approx(8 / 32)

    def test_chunk_reuse_passthrough(self):
        alloc = PagedKVAllocator(8, 16)
        alloc.reserve("a", 64)
        alloc.release("a")
        alloc.reserve("b", 64)
        stats = alloc.stats()
        assert stats.cache.allocations == 4
        assert stats.cache.reuses == 4
        assert stats.cache.reuse_fraction == pytest.approx(0.5)

    def test_clear(self):
        alloc = PagedKVAllocator(8, 16)
        alloc.reserve("a", 64)
        alloc.reserve("b", 32)
        alloc.clear()
        assert alloc.used_blocks == 0
        assert alloc.stored_tokens == 0
