"""Tests for commutated context parallelism (Section 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context_parallel import (
    cp_volume_comparison,
    cp_volume_kv_passing,
    cp_volume_query_passing,
    ring_attention_query_passing,
)
from repro.model.config import LLAMA_13B, LLAMA_70B
from repro.numerics.attention import attention_reference


class TestVolumes:
    def test_zero_without_context_parallelism(self):
        assert cp_volume_kv_passing(LLAMA_13B, 65536, 8, 1) == 0.0
        assert cp_volume_query_passing(LLAMA_13B, 65536, 8, 1) == 0.0

    def test_kv_passing_grows_quadratically_with_slices(self):
        few = cp_volume_kv_passing(LLAMA_13B, 65536, 4, 8)
        many = cp_volume_kv_passing(LLAMA_13B, 65536, 16, 8)
        # sum over slices is ~n(n+1)/2 of one slice, so 4x the slices -> ~3.4x volume.
        assert many / few == pytest.approx((17 / 2) / (5 / 2), rel=0.01)

    def test_query_passing_independent_of_slice_count(self):
        few = cp_volume_query_passing(LLAMA_13B, 65536, 4, 8)
        many = cp_volume_query_passing(LLAMA_13B, 65536, 16, 8)
        assert many == pytest.approx(few, rel=1e-9)

    def test_commutated_variant_wins_for_mha_models(self):
        """For MHA models (Q the same width as K+V) the saving is ~(n+1)/2."""
        comparison = cp_volume_comparison(LLAMA_13B, 262144, 16, 8)
        assert comparison.reduction_factor == pytest.approx((16 + 1) / 2, rel=0.05)

    def test_gqa_reduces_but_does_not_reverse_the_benefit(self):
        """With 8-way GQA the query is wider than K+V, shrinking (not reversing)
        the saving at moderate slice counts and restoring it for large n."""
        moderate = cp_volume_comparison(LLAMA_70B, 262144, 16, 8)
        many = cp_volume_comparison(LLAMA_70B, 262144, 64, 8)
        assert moderate.reduction_factor > 1.0
        assert many.reduction_factor > 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            cp_volume_kv_passing(LLAMA_13B, 65536, 0, 8)
        with pytest.raises(ValueError):
            cp_volume_query_passing(LLAMA_13B, 65536, 0, 8)

    def test_infinite_reduction_when_no_query_traffic(self):
        comparison = cp_volume_comparison(LLAMA_13B, 65536, 8, 1)
        assert comparison.reduction_factor == float("inf")


class TestRingAttentionQueryPassing:
    def _shards(self, ranks=4, tokens=3, heads=4, groups=2, dim=8, seed=0):
        rng = np.random.default_rng(seed)
        qs = [rng.standard_normal((tokens, heads, dim)) for _ in range(ranks)]
        ks = [rng.standard_normal((tokens, groups, dim)) for _ in range(ranks)]
        vs = [rng.standard_normal((tokens, groups, dim)) for _ in range(ranks)]
        return qs, ks, vs

    def test_matches_dense_attention(self):
        qs, ks, vs = self._shards()
        outputs = ring_attention_query_passing(qs, ks, vs)
        dense = attention_reference(
            np.concatenate(qs), np.concatenate(ks), np.concatenate(vs)
        )
        np.testing.assert_allclose(np.concatenate(outputs), dense, rtol=1e-10, atol=1e-12)

    def test_uneven_shards_with_explicit_offsets(self):
        rng = np.random.default_rng(3)
        sizes = [2, 5, 3]
        qs = [rng.standard_normal((t, 2, 4)) for t in sizes]
        ks = [rng.standard_normal((t, 1, 4)) for t in sizes]
        vs = [rng.standard_normal((t, 1, 4)) for t in sizes]
        offsets = [0, 2, 7]
        outputs = ring_attention_query_passing(qs, ks, vs, shard_offsets=offsets)
        dense = attention_reference(
            np.concatenate(qs), np.concatenate(ks), np.concatenate(vs)
        )
        np.testing.assert_allclose(np.concatenate(outputs), dense, rtol=1e-10, atol=1e-12)

    def test_single_rank_degenerates_to_local_attention(self):
        qs, ks, vs = self._shards(ranks=1)
        outputs = ring_attention_query_passing(qs, ks, vs)
        dense = attention_reference(qs[0], ks[0], vs[0])
        np.testing.assert_allclose(outputs[0], dense, rtol=1e-12)

    def test_validation(self):
        qs, ks, vs = self._shards()
        with pytest.raises(ValueError):
            ring_attention_query_passing(qs, ks[:-1], vs)
        with pytest.raises(ValueError):
            ring_attention_query_passing(qs, ks, vs, shard_offsets=[0, 1])
        with pytest.raises(ValueError):
            ring_attention_query_passing([], [], [])

    @settings(max_examples=15, deadline=None)
    @given(
        ranks=st.integers(min_value=1, max_value=5),
        tokens=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_any_sharding_matches_dense(self, ranks, tokens, seed):
        qs, ks, vs = self._shards(ranks=ranks, tokens=tokens, seed=seed)
        outputs = ring_attention_query_passing(qs, ks, vs)
        dense = attention_reference(
            np.concatenate(qs), np.concatenate(ks), np.concatenate(vs)
        )
        np.testing.assert_allclose(np.concatenate(outputs), dense, rtol=1e-9, atol=1e-11)
