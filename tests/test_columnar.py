"""The columnar stretch planner must match the scalar reference bit-for-bit.

``repro.serving.columnar.DecodeColumns`` vectorizes the pure-decode stretch
planner's block-growth bound and end-of-stretch reservation plan as numpy
int64 arithmetic.  The engine dispatches on batch size
(``COLUMNAR_MIN_BATCH``): small batches run the original scalar fold, large
ones the columnar plan — so the two implementations must be exactly
interchangeable.  The scenario-level digests pin this end to end
(`test_fast_forward_equivalence.py`); this suite pins it at the unit level
over hypothesis-generated batches, where a mismatch names the operation
that diverged instead of a whole-run digest.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.columnar import DecodeColumns
from repro.serving.engine import COLUMNAR_MIN_BATCH


def scalar_growth(contexts, held, block_tokens, step):
    need = 0
    for context, blocks in zip(contexts, held):
        extra = (context + step + block_tokens - 1) // block_tokens - blocks
        if extra > 0:
            need += extra
    return need


def scalar_stretch_bound(contexts, held, block_tokens, steps, free):
    if scalar_growth(contexts, held, block_tokens, steps - 1) <= free:
        return steps
    if scalar_growth(contexts, held, block_tokens, 0) > free:
        return 0
    low, high = 0, steps - 1
    while high - low > 1:
        mid = (low + high) // 2
        if scalar_growth(contexts, held, block_tokens, mid) <= free:
            low = mid
        else:
            high = mid
    return low + 1


def scalar_commit_plan(contexts, held, block_tokens, steps):
    new_totals = [context + steps - 1 for context in contexts]
    extra = [
        max((total + block_tokens - 1) // block_tokens - blocks, 0)
        for total, blocks in zip(new_totals, held)
    ]
    return new_totals, extra


BATCHES = st.lists(
    st.tuples(
        st.integers(min_value=2, max_value=60_000),  # context length
        st.integers(min_value=0, max_value=8),  # block slack vs minimum
    ),
    min_size=1,
    max_size=200,
)


@settings(max_examples=200, deadline=None)
@given(
    batch=BATCHES,
    block_tokens=st.sampled_from([16, 64, 256]),
    steps=st.integers(min_value=1, max_value=4096),
    free=st.integers(min_value=0, max_value=20_000),
)
def test_columnar_matches_scalar(batch, block_tokens, steps, free):
    contexts = [context for context, _ in batch]
    # Reservations in steady decode hold at least ceil((context-1)/bt)
    # blocks; the slack models shared-prefix refs rounding the count up.
    held = [
        (context - 1 + block_tokens - 1) // block_tokens + slack
        for context, slack in batch
    ]
    ids = list(range(len(batch)))
    columns = DecodeColumns(ids, contexts, held, block_tokens)

    for step in (0, 1, steps - 1, steps):
        assert columns.growth(step) == scalar_growth(contexts, held, block_tokens, step)
    assert columns.stretch_bound(steps, free) == scalar_stretch_bound(
        contexts, held, block_tokens, steps, free
    )
    new_totals, extra = columns.commit_plan(steps)
    ref_totals, ref_extra = scalar_commit_plan(contexts, held, block_tokens, steps)
    assert new_totals == ref_totals
    assert extra == ref_extra
    # numpy must hand back Python ints, not int64 — allocator bookkeeping
    # stores them in dicts shared with scalar-path values.
    assert all(type(value) is int for value in new_totals + extra)


def test_dispatch_threshold_is_sane():
    # The engine's scalar fallback exists because array construction costs
    # more than it saves on small batches; the threshold must stay within
    # the regime real pools see so both paths keep getting exercised.
    assert 1 < COLUMNAR_MIN_BATCH <= 512
