"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.model == "llama-13b"
        assert args.gpus == 64

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "--model", "gpt-5"])


class TestPlanCommand:
    def test_prints_all_three_systems(self, capsys):
        exit_code = main(["plan", "--model", "llama-13b", "--gpus", "32", "--context-k", "64"])
        out = capsys.readouterr().out
        assert exit_code == 0
        for system in ("slimpipe", "megatron-lm", "deepspeed"):
            assert system in out
        assert "MFU" in out

    def test_infeasible_points_reported(self, capsys):
        exit_code = main(
            ["plan", "--model", "llama-70b", "--gpus", "32", "--context-k", "1024"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "oom" in out or "no-configuration" in out


class TestScheduleCommand:
    def test_simulates_and_prints_memory(self, capsys):
        exit_code = main(
            [
                "schedule",
                "--model",
                "llama-13b",
                "--pipeline-parallel",
                "4",
                "--context-k",
                "32",
                "--slices",
                "8",
                "--ascii-timeline",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "per-device memory" in out
        assert "dev 0" in out  # the ASCII timeline

    def test_trace_export(self, tmp_path, capsys):
        trace_path = tmp_path / "iteration.json"
        exit_code = main(
            [
                "schedule",
                "--context-k",
                "32",
                "--slices",
                "8",
                "--trace",
                str(trace_path),
            ]
        )
        capsys.readouterr()
        assert exit_code == 0
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]


class TestServeCommand:
    def test_list_scenarios(self, capsys):
        assert main(["serve", "--list"]) == 0
        out = capsys.readouterr().out
        assert "chat" in out and "bursty-long" in out

    def test_serves_chat_scenario(self, capsys):
        exit_code = main(
            ["serve", "--scenario", "chat", "--model", "llama-70b", "--gpus", "8"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "TTFT p50" in out
        assert "TPOT" in out
        assert "goodput" in out
        assert "KV-cache utilization" in out

    def test_deterministic_under_fixed_seed(self, capsys):
        argv = ["serve", "--scenario", "chat", "--seed", "11"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_trace_export(self, tmp_path, capsys):
        trace_path = tmp_path / "serving.json"
        exit_code = main(["serve", "--scenario", "chat", "--trace", str(trace_path)])
        capsys.readouterr()
        assert exit_code == 0
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]

    def test_unknown_scenario_exits_with_names(self, capsys):
        assert main(["serve", "--scenario", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err
        assert "chat" in err  # the valid names are listed

    def test_unknown_model_exits_with_names(self, capsys):
        assert main(["serve", "--scenario", "chat", "--model", "gpt-5"]) == 2
        err = capsys.readouterr().err
        assert "unknown model" in err
        assert "llama-70b" in err

    def test_massive_scenario_slice(self, capsys):
        # Massive scenarios stream by default; --max-requests bounds the
        # slice so the smoke stays cheap.
        exit_code = main(
            ["serve", "--scenario", "massive-diurnal", "--max-requests", "300"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "requests served" in out and "300" in out

    def test_max_requests_must_be_positive(self, capsys):
        assert main(["serve", "--scenario", "chat", "--max-requests", "0"]) == 2
        assert "max_requests" in capsys.readouterr().err

    def test_no_retain_records_on_a_classic_scenario(self, capsys):
        assert main(["serve", "--scenario", "chat", "--no-retain-records"]) == 0
        assert "goodput" in capsys.readouterr().out

    def test_streaming_refuses_disaggregation(self, capsys):
        exit_code = main(
            ["serve", "--scenario", "chat", "--no-retain-records", "--disaggregated"]
        )
        assert exit_code == 2
        assert "colocated" in capsys.readouterr().err


class TestServeTenancy:
    def test_tenant_scenario_prints_per_tenant_report(self, capsys):
        exit_code = main(["serve", "--scenario", "noisy-neighbour"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "per-tenant QoS" in out
        assert "acme" in out and "crunch" in out

    def test_fair_policy_flag_accepted(self, capsys):
        exit_code = main(
            ["serve", "--scenario", "noisy-neighbour", "--policy", "fair"]
        )
        assert exit_code == 0
        assert "per-tenant QoS" in capsys.readouterr().out

    def test_tenant_filter_narrows_report(self, capsys):
        exit_code = main(
            ["serve", "--scenario", "noisy-neighbour", "--tenant", "acme"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        report = out[out.index("per-tenant QoS") :]
        assert "acme" in report and "crunch" not in report

    def test_unknown_tenant_exits_with_names(self, capsys):
        exit_code = main(
            ["serve", "--scenario", "noisy-neighbour", "--tenant", "nosuch"]
        )
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "unknown tenant" in err
        assert "acme" in err and "crunch" in err  # the valid names are listed

    def test_unknown_slo_class_exits_with_names(self, capsys):
        exit_code = main(
            ["serve", "--scenario", "chat", "--slo-class", "nosuch"]
        )
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "unknown SLO class" in err
        assert "interactive" in err and "batch" in err and "best-effort" in err

    def test_tenant_needs_tenancy_scenario(self, capsys):
        exit_code = main(["serve", "--scenario", "chat", "--tenant", "acme"])
        assert exit_code == 2
        assert "configures no tenants" in capsys.readouterr().err

    def test_tenant_report_artifact(self, tmp_path, capsys):
        path = tmp_path / "qos.json"
        exit_code = main(
            ["serve", "--scenario", "noisy-neighbour", "--tenant-report", str(path)]
        )
        capsys.readouterr()
        assert exit_code == 0
        report = json.loads(path.read_text())
        assert report["scenario"] == "noisy-neighbour"
        assert report["policy"] == "fair"
        assert set(report["tenants"]) == {"acme", "crunch"}
        for tenant in report["tenants"].values():
            assert tenant["num_requests"] > 0
            assert tenant["slo_ttft"] > 0


class TestDiagnosisFlags:
    def test_serve_explain_prints_attribution_and_anomalies(self, capsys):
        exit_code = main(["serve", "--scenario", "chat", "--explain"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "latency attribution | chat | colocated" in out
        assert "anomalies | chat | colocated" in out

    def test_serve_events_round_trip_through_obs_explain(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        assert main(["serve", "--scenario", "chat", "--events", str(events)]) == 0
        capsys.readouterr()
        assert events.exists()
        assert main(["obs", "explain", str(events)]) == 0
        out = capsys.readouterr().out
        assert "recorded events | events.jsonl" in out
        assert "latency attribution" in out
        assert "anomalies" in out

    def test_serve_diff_against_saved_baseline(self, tmp_path, capsys):
        events = tmp_path / "base.jsonl"
        scenario = ["serve", "--scenario", "shared-system-prompt"]
        assert main(scenario + ["--events", str(events)]) == 0
        capsys.readouterr()
        assert main(
            scenario + ["--no-prefix-caching", "--diff-against", str(events)]
        ) == 0
        out = capsys.readouterr().out
        assert "dominant shift: prefill" in out

    def test_diff_against_missing_file_is_a_user_error(self, capsys):
        exit_code = main(
            ["serve", "--scenario", "chat", "--diff-against", "/nonexistent.jsonl"]
        )
        assert exit_code == 2
        assert "cannot read event stream" in capsys.readouterr().err

    def test_fleet_incident_report_json_artifact(self, tmp_path, capsys):
        path = tmp_path / "incident.json"
        exit_code = main(
            [
                "fleet", "run",
                "--scenario", "unreliable",
                "--explain",
                "--incident-report", str(path),
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "incident report written to" in out
        payload = json.loads(path.read_text())
        assert payload["incident_count"] >= 1
        assert "# Postmortem" in payload["markdown"]
        causes = [
            cause["kind"]
            for incident in payload["incidents"]
            for cause in incident["causes"]
        ]
        assert "crash" in causes

    def test_fleet_incident_report_markdown(self, tmp_path, capsys):
        path = tmp_path / "incident.md"
        assert main(
            ["fleet", "run", "--scenario", "unreliable", "--incident-report", str(path)]
        ) == 0
        capsys.readouterr()
        assert path.read_text().startswith("# Postmortem")

    def test_explain_enriches_the_trace(self, tmp_path, capsys):
        plain_path = tmp_path / "plain.json"
        rich_path = tmp_path / "rich.json"
        serve = ["serve", "--scenario", "chat"]
        assert main(serve + ["--trace", str(plain_path)]) == 0
        assert main(serve + ["--trace", str(rich_path), "--explain"]) == 0
        capsys.readouterr()

        def processes(path):
            trace = json.loads(path.read_text())
            return {
                e["args"]["name"]
                for e in trace["traceEvents"]
                if e.get("name") == "process_name"
            }

        # The base export is untouched; --explain adds the diagnosis track
        # and per-request span args on the lifeline closes.
        assert processes(plain_path) == {"engine", "requests", "counters", "cluster"}
        assert processes(rich_path) == {
            "engine", "requests", "counters", "cluster", "diagnosis",
        }
        rich = json.loads(rich_path.read_text())
        closes = [
            e for e in rich["traceEvents"] if e.get("ph") == "e" and e.get("args")
        ]
        assert closes and "spans" in closes[0]["args"]

    def test_obs_explain_missing_file_exits_cleanly(self, capsys):
        assert main(["obs", "explain", "/nonexistent.jsonl"]) == 2
        assert "cannot read event stream" in capsys.readouterr().err

    def test_obs_explain_diff_and_report(self, tmp_path, capsys):
        base, current = tmp_path / "base.jsonl", tmp_path / "current.jsonl"
        scenario = ["serve", "--scenario", "shared-system-prompt"]
        assert main(scenario + ["--events", str(base)]) == 0
        assert main(scenario + ["--no-prefix-caching", "--events", str(current)]) == 0
        capsys.readouterr()
        report = tmp_path / "report.md"
        exit_code = main(
            [
                "obs", "explain", str(current),
                "--diff-against", str(base),
                "--slo-ttft", "2.0",
                "--incident-report", str(report),
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "dominant shift: prefill" in out
        assert report.read_text().startswith("# Postmortem")


class TestExperimentsCommand:
    def test_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out and "tab4" in out

    def test_runs_a_light_experiment(self, capsys):
        assert main(["experiments", "fig3", "tab3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "Table 3" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiments", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_no_names_is_an_error(self, capsys):
        assert main(["experiments"]) == 2

    def test_sweep_experiment_registered(self, capsys):
        assert main(["experiments", "--list"]) == 0
        assert "sweep" in capsys.readouterr().out


class TestSweepCommand:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_list_axes_prints_every_registered_sweep(self, capsys):
        assert main(["sweep", "list-axes"]) == 0
        out = capsys.readouterr().out
        for name in ("fig12", "scheme-context", "serving"):
            assert name in out
        assert "axis" in out and "points" in out

    def test_list_axes_single_sweep(self, capsys):
        assert main(["sweep", "list-axes", "--name", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out and "scheme-context" not in out

    def test_run_scheme_context_no_cache(self, capsys):
        assert main(
            ["sweep", "run", "--name", "scheme-context", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "sweep scheme-context" in out
        assert "slimpipe" in out and "bubble_fraction" in out

    def test_run_uses_the_cache_dir(self, tmp_path, capsys):
        argv = [
            "sweep", "run", "--name", "scheme-context", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert (tmp_path / "scheme-context.json").exists()
        assert main(argv) == 0
        assert "25 cached, 0 evaluated" in capsys.readouterr().out

    def test_unknown_sweep_exits_with_names(self, capsys):
        assert main(["sweep", "run", "--name", "nope", "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert "unknown sweep" in err and "fig12" in err

    def test_golden_check_and_regenerate_roundtrip(self, tmp_path, capsys):
        # A missing directory fails the check, regeneration repairs it.
        argv_check = ["sweep", "golden", "fig03", "fig08", "--dir", str(tmp_path)]
        assert main(argv_check) == 1
        capsys.readouterr()
        assert main(["sweep", "golden", "fig03", "fig08", "--regenerate", "--dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(argv_check) == 0
        out = capsys.readouterr().out
        assert "golden fig03: ok" in out

    def test_unknown_golden_exits_with_names(self, capsys):
        assert main(["sweep", "golden", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown golden" in err and "fig03" in err


class TestFleetCommand:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet"])

    def test_list_scenarios(self, capsys):
        assert main(["fleet", "run", "--list"]) == 0
        out = capsys.readouterr().out
        assert "steady-chat" in out and "bursty-long" in out and "canary-chat" in out

    def test_runs_the_canary_scenario(self, capsys):
        exit_code = main(["fleet", "run", "--scenario", "canary-chat", "--no-autoscale"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "TTFT p50" in out
        assert "router" in out
        assert "GPU-hours" in out
        assert "tokens admitted/prefilled/requeued" in out

    def test_deterministic_under_fixed_seed(self, capsys):
        argv = ["fleet", "run", "--scenario", "canary-chat", "--seed", "5"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_trace_export(self, tmp_path, capsys):
        trace_path = tmp_path / "fleet.json"
        exit_code = main(
            ["fleet", "run", "--scenario", "canary-chat", "--trace", str(trace_path)]
        )
        capsys.readouterr()
        assert exit_code == 0
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]

    def test_unknown_scenario_exits_with_names(self, capsys):
        assert main(["fleet", "run", "--scenario", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown fleet scenario" in err
        assert "steady-chat" in err  # the valid names are listed

    def test_unknown_router_exits_with_names(self, capsys):
        assert main(
            ["fleet", "run", "--scenario", "canary-chat", "--router", "magic"]
        ) == 2
        err = capsys.readouterr().err
        assert "unknown router" in err and "least-tokens" in err

    def test_plan_requires_the_slo_flag(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "plan", "--scenario", "canary-chat"])

    def test_plan_prints_the_frontier(self, tmp_path, capsys):
        exit_code = main(
            [
                "fleet", "plan",
                "--scenario", "canary-chat",
                "--slo-ttft-p99", "1.0",
                "--max-replicas", "4",
                "--cache-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "capacity plan" in out
        assert "<- plan" in out

    def test_plan_infeasible_exits_nonzero(self, capsys):
        exit_code = main(
            [
                "fleet", "plan",
                "--scenario", "canary-chat",
                "--slo-ttft-p99", "0.0001",
                "--max-replicas", "1",
                "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "infeasible" in out

    def test_plan_bad_slo_exits_cleanly(self, capsys):
        exit_code = main(
            [
                "fleet", "plan",
                "--scenario", "canary-chat",
                "--slo-ttft-p99", "-1",
                "--no-cache",
            ]
        )
        err = capsys.readouterr().err
        assert exit_code == 2
        assert "error:" in err and "slo_ttft_p99" in err

    def test_fleet_experiment_registered(self, capsys):
        assert main(["experiments", "--list"]) == 0
        assert "fleet" in capsys.readouterr().out
