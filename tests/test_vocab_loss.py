"""Tests for the vocabulary-parallel sharded cross-entropy (Section 4.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.functional import (
    cross_entropy_backward,
    cross_entropy_forward,
    linear_backward,
    linear_forward,
)
from repro.numerics.vocab_loss import (
    shard_vocab_weights,
    sharded_cross_entropy_backward,
    sharded_cross_entropy_forward,
)

RNG = np.random.default_rng(11)


def reference_loss_and_grads(hidden, weight, targets):
    """Unsharded ground truth: full logits + ordinary cross-entropy."""
    logits, lin_cache = linear_forward(hidden, weight)
    loss, ce_cache = cross_entropy_forward(logits, targets)
    dlogits = cross_entropy_backward(1.0, ce_cache)
    dhidden, dweight, _ = linear_backward(dlogits, lin_cache)
    return loss, dhidden, dweight


class TestShardVocabWeights:
    def test_shards_partition_columns(self):
        weight = RNG.standard_normal((6, 12))
        shards = shard_vocab_weights(weight, 4)
        assert len(shards) == 4
        assert [s.vocab_start for s in shards] == [0, 3, 6, 9]
        np.testing.assert_allclose(np.hstack([s.weight for s in shards]), weight)

    def test_single_shard(self):
        weight = RNG.standard_normal((4, 8))
        shards = shard_vocab_weights(weight, 1)
        assert len(shards) == 1
        assert shards[0].vocab_stop == 8

    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError):
            shard_vocab_weights(RNG.standard_normal((4, 10)), 3)
        with pytest.raises(ValueError):
            shard_vocab_weights(RNG.standard_normal((4, 10)), 0)


class TestShardedCrossEntropy:
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
    def test_loss_matches_unsharded(self, num_shards):
        hidden = RNG.standard_normal((10, 6))
        weight = RNG.standard_normal((6, 16))
        targets = RNG.integers(0, 16, size=10)
        ref_loss, _, _ = reference_loss_and_grads(hidden, weight, targets)
        shards = shard_vocab_weights(weight, num_shards)
        loss, _ = sharded_cross_entropy_forward(hidden, shards, targets)
        assert loss == pytest.approx(ref_loss, rel=1e-12)

    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_gradients_match_unsharded(self, num_shards):
        hidden = RNG.standard_normal((7, 5))
        weight = RNG.standard_normal((5, 12))
        targets = RNG.integers(0, 12, size=7)
        _, ref_dhidden, ref_dweight = reference_loss_and_grads(hidden, weight, targets)

        shards = shard_vocab_weights(weight, num_shards)
        _, cache = sharded_cross_entropy_forward(hidden, shards, targets)
        dhidden, dweights = sharded_cross_entropy_backward(1.0, cache)
        np.testing.assert_allclose(dhidden, ref_dhidden, rtol=1e-10, atol=1e-14)
        np.testing.assert_allclose(np.hstack(dweights), ref_dweight, rtol=1e-10, atol=1e-14)

    def test_custom_normalizer(self):
        hidden = RNG.standard_normal((4, 5))
        weight = RNG.standard_normal((5, 8))
        targets = RNG.integers(0, 8, size=4)
        shards = shard_vocab_weights(weight, 2)
        loss_mean, _ = sharded_cross_entropy_forward(hidden, shards, targets)
        loss_norm, _ = sharded_cross_entropy_forward(hidden, shards, targets, normalizer=8)
        assert loss_norm == pytest.approx(loss_mean / 2)

    def test_slicewise_losses_sum_to_full(self):
        """Per-slice sharded losses with a shared normalizer add up exactly."""
        hidden = RNG.standard_normal((9, 4))
        weight = RNG.standard_normal((4, 8))
        targets = RNG.integers(0, 8, size=9)
        shards = shard_vocab_weights(weight, 2)
        full, _ = sharded_cross_entropy_forward(hidden, shards, targets)
        parts = sum(
            sharded_cross_entropy_forward(
                hidden[i : i + 3], shards, targets[i : i + 3], normalizer=9
            )[0]
            for i in range(0, 9, 3)
        )
        assert parts == pytest.approx(full, rel=1e-12)

    def test_validation(self):
        hidden = RNG.standard_normal((4, 5))
        weight = RNG.standard_normal((5, 8))
        shards = shard_vocab_weights(weight, 2)
        with pytest.raises(ValueError):
            sharded_cross_entropy_forward(hidden, shards, np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            sharded_cross_entropy_forward(hidden, [], np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            sharded_cross_entropy_forward(
                hidden, shards, np.zeros(4, dtype=int), normalizer=-1
            )

    @settings(max_examples=25, deadline=None)
    @given(
        tokens=st.integers(min_value=1, max_value=12),
        log2_shards=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_sharded_equals_unsharded(self, tokens, log2_shards, seed):
        rng = np.random.default_rng(seed)
        vocab, hidden_size = 16, 6
        hidden = rng.standard_normal((tokens, hidden_size))
        weight = rng.standard_normal((hidden_size, vocab))
        targets = rng.integers(0, vocab, size=tokens)
        ref_loss, ref_dh, ref_dw = reference_loss_and_grads(hidden, weight, targets)
        shards = shard_vocab_weights(weight, 2**log2_shards)
        loss, cache = sharded_cross_entropy_forward(hidden, shards, targets)
        dh, dws = sharded_cross_entropy_backward(1.0, cache)
        assert loss == pytest.approx(ref_loss, rel=1e-10)
        np.testing.assert_allclose(dh, ref_dh, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(np.hstack(dws), ref_dw, rtol=1e-9, atol=1e-12)
