"""Documentation safety nets: links resolve, cookbook recipes run.

Two rot vectors for a docs tree:

* **Dead intra-repo links** — every relative markdown link in README.md
  and ``docs/*.md`` must point at a file that exists.
* **Stale commands** — every ``bash`` fence in ``docs/cookbook.md`` is a
  contract: the smoke test executes each block verbatim from the repo
  root (``PYTHONPATH=src``, ``bash -euo pipefail``), so a renamed flag,
  scenario or subcommand fails CI instead of silently rotting the guide.
"""

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = sorted((REPO_ROOT / "docs").glob("*.md"))
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_PATTERN = re.compile(r"```bash\n(.*?)```", re.DOTALL)

REQUIRED_GUIDES = (
    "architecture.md",
    "serving.md",
    "fleet.md",
    "sweep.md",
    "metrics.md",
    "observability.md",
    "cookbook.md",
)


def _links_of(path: Path):
    for target in LINK_PATTERN.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


class TestDocsTree:
    def test_docs_tree_is_complete(self):
        names = {p.name for p in DOCS}
        missing = set(REQUIRED_GUIDES) - names
        assert not missing, f"docs/ is missing {sorted(missing)}"

    def test_readme_links_every_guide(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for guide in REQUIRED_GUIDES:
            assert f"docs/{guide}" in readme, f"README.md does not link docs/{guide}"

    @pytest.mark.parametrize(
        "path",
        [REPO_ROOT / "README.md", *DOCS],
        ids=lambda p: p.name,
    )
    def test_intra_repo_links_resolve(self, path):
        dead = [
            target
            for target in _links_of(path)
            if not (path.parent / target).resolve().exists()
        ]
        assert not dead, f"{path.name} has dead links: {dead}"


def _cookbook_blocks():
    text = (REPO_ROOT / "docs" / "cookbook.md").read_text()
    return FENCE_PATTERN.findall(text)


class TestCookbookSmoke:
    def test_cookbook_has_at_least_six_recipes(self):
        text = (REPO_ROOT / "docs" / "cookbook.md").read_text()
        recipes = re.findall(r"^## \d+\.", text, re.MULTILINE)
        assert len(recipes) >= 6
        assert len(_cookbook_blocks()) >= 6

    @pytest.mark.parametrize(
        "block",
        _cookbook_blocks(),
        ids=[f"block{i}" for i in range(len(_cookbook_blocks()))],
    )
    def test_cookbook_block_executes(self, block):
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        # Recipes must be hermetic: no shared sweep-cache state leaks in
        # (blocks that demonstrate caching bring their own --cache-dir).
        env.setdefault("REPRO_SWEEP_CACHE_DIR", "/tmp/repro-cookbook-unused-cache")
        script = f"set -euo pipefail\n{block}"
        result = subprocess.run(
            ["bash", "-c", script],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, (
            f"cookbook block failed (exit {result.returncode})\n"
            f"--- script ---\n{block}\n"
            f"--- stdout ---\n{result.stdout[-2000:]}\n"
            f"--- stderr ---\n{result.stderr[-2000:]}"
        )

    def test_cookbook_blocks_only_write_under_tmp(self):
        # The smoke test runs from the repo root; recipes must not leave
        # droppings in the tree.  Redirections and mktemp targets must
        # point at /tmp (or a variable derived from it).
        for block in _cookbook_blocks():
            for line in block.splitlines():
                for target in re.findall(r">\s*([^\s|&;]+)", line):
                    if target.startswith(("/dev/", '"$', "$")):
                        continue
                    assert target.startswith("/tmp/"), (
                        f"cookbook writes outside /tmp: {line!r}"
                    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(pytest.main([__file__, "-q"]))
