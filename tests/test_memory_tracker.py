"""Tests for the schedule memory tracker."""

import pytest

from repro.schedules import (
    build_1f1b_schedule,
    build_gpipe_schedule,
    build_interleaved_1f1b_schedule,
    build_terapipe_schedule,
    build_zero_bubble_v_schedule,
)
from repro.sim import MemoryTracker, SimpleAccountant


def peaks(schedule, **kwargs):
    return MemoryTracker(schedule, SimpleAccountant(**kwargs)).peak_activation_bytes()


def test_gpipe_accumulates_all_microbatches():
    assert peaks(build_gpipe_schedule(4, 6)) == [6, 6, 6, 6]


def test_1f1b_accumulates_pipeline_depth():
    assert peaks(build_1f1b_schedule(4, 8)) == [4, 3, 2, 1]


def test_terapipe_accumulates_all_slices():
    assert peaks(build_terapipe_schedule(4, 2, 8)) == [16, 16, 16, 16]


def test_interleaved_peak_formula():
    p, m, v = 4, 8, 2
    got = peaks(build_interleaved_1f1b_schedule(p, m, v))
    assert got[0] == v * p + p - 1


def test_zbv_releases_after_weight_grad():
    sched = build_zero_bubble_v_schedule(4, 6)
    got = peaks(sched)
    assert max(got) <= 2 * 4
    assert max(got) == max(sched.max_inflight_activations())


def test_transient_and_base_memory_included():
    sched = build_1f1b_schedule(2, 2)
    tracker = MemoryTracker(sched, SimpleAccountant(stored=2.0, transient=3.0, base=10.0))
    profiles = tracker.profile()
    for profile in profiles:
        assert profile.base_bytes == 10.0
        assert profile.peak_bytes == profile.peak_activation_bytes + 10.0
        assert profile.peak_activation_bytes >= 3.0
    assert tracker.max_peak_bytes() == max(p.peak_bytes for p in profiles)
    assert tracker.peak_bytes() == [p.peak_bytes for p in profiles]


def test_peak_gib_property():
    sched = build_1f1b_schedule(2, 2)
    tracker = MemoryTracker(sched, SimpleAccountant(stored=1024**3, base=0.0))
    profile = tracker.profile()[0]
    assert profile.peak_gib == pytest.approx(profile.peak_bytes / 1024**3)


def test_tracker_per_pass_accountant():
    """Accountants can differentiate passes (e.g. later slices storing more KV)."""

    class SliceAccountant(SimpleAccountant):
        def stored_bytes(self, work):
            return 1.0 + (work.slice_index or 0)

    sched = build_terapipe_schedule(2, 1, 4)
    tracker = MemoryTracker(sched, SliceAccountant())
    # slices store 1 + 2 + 3 + 4 = 10 units at peak
    assert tracker.peak_activation_bytes() == [10.0, 10.0]
