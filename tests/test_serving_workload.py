"""Tests for the serving workload generators (repro.serving.workload)."""

from itertools import islice
from types import GeneratorType

import pytest

from repro.serving.workload import (
    Request,
    bursty_stream,
    bursty_trace,
    diurnal_stream,
    diurnal_trace,
    long_context_stream,
    long_context_trace,
    merge_traces,
    poisson_stream,
    poisson_trace,
    rag_corpus_stream,
    rag_corpus_trace,
    replay_trace,
    shared_prefix_stream,
    shared_prefix_trace,
    weekly_stream,
    weekly_trace,
)


class TestRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            Request(0, -1.0, 10, 10)
        with pytest.raises(ValueError):
            Request(0, 0.0, 0, 10)
        with pytest.raises(ValueError):
            Request(0, 0.0, 10, 0)

    def test_total_tokens(self):
        assert Request(0, 0.0, 10, 5).total_tokens == 15


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = poisson_trace(50, 2.0, 1024, 256, seed=7)
        b = poisson_trace(50, 2.0, 1024, 256, seed=7)
        assert a == b

    def test_different_seed_different_trace(self):
        a = poisson_trace(50, 2.0, 1024, 256, seed=7)
        b = poisson_trace(50, 2.0, 1024, 256, seed=8)
        assert a != b

    def test_bursty_deterministic(self):
        assert bursty_trace(3, 4, 10.0, 4096, 256, seed=1) == bursty_trace(
            3, 4, 10.0, 4096, 256, seed=1
        )

    def test_long_context_deterministic(self):
        a = long_context_trace(40, 1.0, 1024, 65536, 0.3, 128, seed=3)
        assert a == long_context_trace(40, 1.0, 1024, 65536, 0.3, 128, seed=3)


class TestShapes:
    def test_poisson_sorted_and_positive(self):
        trace = poisson_trace(100, 4.0, 2048, 256, seed=0)
        assert len(trace) == 100
        arrivals = [r.arrival_time for r in trace]
        assert arrivals == sorted(arrivals)
        assert all(r.prompt_tokens >= 1 and r.output_tokens >= 1 for r in trace)

    def test_poisson_mean_roughly_matches(self):
        trace = poisson_trace(500, 2.0, 2048, 256, seed=0)
        mean_prompt = sum(r.prompt_tokens for r in trace) / len(trace)
        assert 0.75 * 2048 < mean_prompt < 1.3 * 2048
        span = trace[-1].arrival_time
        assert 0.7 * 250 < span < 1.4 * 250  # 500 requests at 2/s

    def test_bursty_structure(self):
        trace = bursty_trace(3, 5, 10.0, 4096, 256, seed=0)
        assert len(trace) == 15
        # Bursts are 10 s apart, requests inside a burst nearly simultaneous.
        assert trace[5].arrival_time == pytest.approx(10.0, abs=0.1)
        assert trace[4].arrival_time - trace[0].arrival_time < 0.1

    def test_long_context_tail(self):
        trace = long_context_trace(300, 1.0, 1024, 65536, 0.3, 128, seed=0)
        long = [r for r in trace if r.prompt_tokens > 16384]
        assert 0.15 * len(trace) < len(long) < 0.45 * len(trace)

    def test_caps_respected(self):
        trace = poisson_trace(
            200, 1.0, 4096, 256, seed=0, prompt_cv=3.0, max_prompt_tokens=8192
        )
        assert max(r.prompt_tokens for r in trace) <= 8192


class TestStreams:
    """The lazy ``*_stream`` forms: identical requests, no materialization."""

    @pytest.mark.parametrize(
        "stream_fn, trace_fn, args",
        [
            (poisson_stream, poisson_trace, (40, 2.0, 1024, 128)),
            (bursty_stream, bursty_trace, (3, 5, 10.0, 2048, 128)),
            (long_context_stream, long_context_trace, (40, 1.0, 1024, 65536, 0.3, 128)),
            (shared_prefix_stream, shared_prefix_trace, (40, 2.0, 4096, 256, 128)),
            (rag_corpus_stream, rag_corpus_trace, (40, 2.0, 16, 2048, 128, 128)),
            (diurnal_stream, diurnal_trace, (40, 2.0, 1024, 128)),
            (weekly_stream, weekly_trace, (40, 2.0, 1024, 128)),
        ],
        ids=[
            "poisson",
            "bursty",
            "long-context",
            "shared-prefix",
            "rag-corpus",
            "diurnal",
            "weekly",
        ],
    )
    def test_stream_equals_trace(self, stream_fn, trace_fn, args):
        stream = stream_fn(*args, seed=3)
        assert isinstance(stream, GeneratorType)
        assert list(stream) == trace_fn(*args, seed=3)

    def test_streams_are_lazy(self):
        # Pulling a handful of requests off a million-request stream must
        # not materialize the rest (a list would allocate all of them).
        head = list(islice(poisson_stream(1_000_000, 100.0, 256, 32, seed=0), 5))
        assert len(head) == 5
        arrivals = [r.arrival_time for r in head]
        assert arrivals == sorted(arrivals)

    def test_diurnal_day_curve_shape(self):
        # The sine curve starts at the trough, peaks mid-period: the middle
        # half-period must see clearly more arrivals than the edges.
        trace = diurnal_trace(2000, 2.0, 256, 32, seed=0, period=1000.0, amplitude=0.8)
        arrivals = [r.arrival_time for r in trace if r.arrival_time < 1000.0]
        mid = sum(1 for t in arrivals if 250.0 <= t < 750.0)
        edges = len(arrivals) - mid
        assert arrivals == sorted(arrivals)
        assert mid > 1.5 * edges

    def test_weekly_weekend_trough(self):
        day = 1000.0
        trace = weekly_trace(
            4000, 2.0, 256, 32, seed=0, weekend_factor=0.3, day_seconds=day
        )
        week = [r.arrival_time for r in trace if r.arrival_time < 7 * day]
        weekday = sum(1 for t in week if t < 5 * day) / 5.0
        weekend = sum(1 for t in week if t >= 5 * day) / 2.0
        assert weekend < 0.6 * weekday


class TestReplayAndMerge:
    def test_replay_orders_by_arrival(self):
        trace = replay_trace([(5.0, 10, 2), (1.0, 20, 3)])
        assert [r.arrival_time for r in trace] == [1.0, 5.0]
        assert trace[0].prompt_tokens == 20

    def test_merge_reassigns_ids(self):
        a = replay_trace([(0.0, 10, 2), (4.0, 10, 2)])
        b = replay_trace([(2.0, 30, 5)])
        merged = merge_traces(a, b)
        assert [r.request_id for r in merged] == [0, 1, 2]
        assert [r.arrival_time for r in merged] == [0.0, 2.0, 4.0]
        assert merged[1].prompt_tokens == 30
