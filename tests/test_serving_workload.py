"""Tests for the serving workload generators (repro.serving.workload)."""

import pytest

from repro.serving.workload import (
    Request,
    bursty_trace,
    long_context_trace,
    merge_traces,
    poisson_trace,
    replay_trace,
)


class TestRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            Request(0, -1.0, 10, 10)
        with pytest.raises(ValueError):
            Request(0, 0.0, 0, 10)
        with pytest.raises(ValueError):
            Request(0, 0.0, 10, 0)

    def test_total_tokens(self):
        assert Request(0, 0.0, 10, 5).total_tokens == 15


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = poisson_trace(50, 2.0, 1024, 256, seed=7)
        b = poisson_trace(50, 2.0, 1024, 256, seed=7)
        assert a == b

    def test_different_seed_different_trace(self):
        a = poisson_trace(50, 2.0, 1024, 256, seed=7)
        b = poisson_trace(50, 2.0, 1024, 256, seed=8)
        assert a != b

    def test_bursty_deterministic(self):
        assert bursty_trace(3, 4, 10.0, 4096, 256, seed=1) == bursty_trace(
            3, 4, 10.0, 4096, 256, seed=1
        )

    def test_long_context_deterministic(self):
        a = long_context_trace(40, 1.0, 1024, 65536, 0.3, 128, seed=3)
        assert a == long_context_trace(40, 1.0, 1024, 65536, 0.3, 128, seed=3)


class TestShapes:
    def test_poisson_sorted_and_positive(self):
        trace = poisson_trace(100, 4.0, 2048, 256, seed=0)
        assert len(trace) == 100
        arrivals = [r.arrival_time for r in trace]
        assert arrivals == sorted(arrivals)
        assert all(r.prompt_tokens >= 1 and r.output_tokens >= 1 for r in trace)

    def test_poisson_mean_roughly_matches(self):
        trace = poisson_trace(500, 2.0, 2048, 256, seed=0)
        mean_prompt = sum(r.prompt_tokens for r in trace) / len(trace)
        assert 0.75 * 2048 < mean_prompt < 1.3 * 2048
        span = trace[-1].arrival_time
        assert 0.7 * 250 < span < 1.4 * 250  # 500 requests at 2/s

    def test_bursty_structure(self):
        trace = bursty_trace(3, 5, 10.0, 4096, 256, seed=0)
        assert len(trace) == 15
        # Bursts are 10 s apart, requests inside a burst nearly simultaneous.
        assert trace[5].arrival_time == pytest.approx(10.0, abs=0.1)
        assert trace[4].arrival_time - trace[0].arrival_time < 0.1

    def test_long_context_tail(self):
        trace = long_context_trace(300, 1.0, 1024, 65536, 0.3, 128, seed=0)
        long = [r for r in trace if r.prompt_tokens > 16384]
        assert 0.15 * len(trace) < len(long) < 0.45 * len(trace)

    def test_caps_respected(self):
        trace = poisson_trace(
            200, 1.0, 4096, 256, seed=0, prompt_cv=3.0, max_prompt_tokens=8192
        )
        assert max(r.prompt_tokens for r in trace) <= 8192


class TestReplayAndMerge:
    def test_replay_orders_by_arrival(self):
        trace = replay_trace([(5.0, 10, 2), (1.0, 20, 3)])
        assert [r.arrival_time for r in trace] == [1.0, 5.0]
        assert trace[0].prompt_tokens == 20

    def test_merge_reassigns_ids(self):
        a = replay_trace([(0.0, 10, 2), (4.0, 10, 2)])
        b = replay_trace([(2.0, 30, 5)])
        merged = merge_traces(a, b)
        assert [r.request_id for r in merged] == [0, 1, 2]
        assert [r.arrival_time for r in merged] == [0.0, 2.0, 4.0]
        assert merged[1].prompt_tokens == 30
