"""Decode fast-forwarding must be invisible: byte-identical to the naive stepper.

The serving and fleet engines coalesce stable pure-decode stretches
(``fast_forward=True``, the default) instead of stepping them one heap pop /
loop pass at a time.  The optimization is only allowed to change wall-clock
time, never a simulated number, so this suite pins *bit* equality — every
timestamp, latency percentile, KV-utilization integral, counter and timeline
span — between the fast path and the naive reference oracle:

* across every registered serving scenario in both deployments,
* across every registered fleet scenario (autoscaling, failure injection,
  heterogeneous GPUs and all of their event interleavings included),
* over hypothesis-generated random traces, with preemption pressure, both
  admission policies and a decode-only pool in the mix, and
* at the pricing layer: the component-pair fast path must reproduce
  ``CostModel.time_of`` exactly.
"""

from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.scenarios import FLEET_SCENARIO_REGISTRY, run_fleet_scenario
from repro.model.config import get_model_config
from repro.model.costs import CostModel, PassKind
from repro.model.flops import FlopsBreakdown
from repro.serving.batcher import BatcherConfig
from repro.serving.engine import ServingConfig, ServingEngine, _Pool
from repro.serving.metrics import SLO
from repro.serving.scenarios import SCENARIO_REGISTRY, run_scenario
from repro.serving.workload import replay_trace

LLAMA_13B = get_model_config("llama-13b")


def serving_digest(result):
    """Everything a ServingResult observed, as one comparable value."""
    return {
        "mode": result.mode,
        "metrics": asdict(result.metrics),
        "records": [
            (r.request.request_id, r.first_token_time, r.finish_time, r.preemptions)
            for r in result.records
        ],
        "iterations": result.iterations,
        "kv_capacity_tokens": result.kv_capacity_tokens,
        "tokens_admitted": result.tokens_admitted,
        "tokens_prefilled": result.tokens_prefilled,
        "tokens_preempted_requeued": result.tokens_preempted_requeued,
        "preemptions": result.preemptions,
        "spans": [(s.device, s.start, s.end) for s in result.timeline.spans],
    }


def fleet_digest(result):
    return {
        "metrics": asdict(result.metrics),
        "fleet": asdict(result.fleet),
        "records": [
            (r.request.request_id, r.first_token_time, r.finish_time, r.preemptions)
            for r in result.records
        ],
        "iterations": result.iterations,
        "tokens_admitted": result.tokens_admitted,
        "tokens_prefilled": result.tokens_prefilled,
        "tokens_preempted_requeued": result.tokens_preempted_requeued,
        "preemptions": result.preemptions,
    }


@pytest.mark.parametrize(
    "scenario_name",
    sorted(name for name in SCENARIO_REGISTRY if not name.startswith("massive-")),
)
@pytest.mark.parametrize("mode", ["colocated", "disaggregated"])
def test_serving_scenarios_byte_identical(scenario_name, mode):
    scenario = SCENARIO_REGISTRY[scenario_name]
    fast = run_scenario(scenario, mode, seed=0)
    naive = run_scenario(scenario, mode, seed=0, fast_forward=False)
    assert serving_digest(fast) == serving_digest(naive)


@pytest.mark.parametrize(
    "scenario_name", sorted(name for name in SCENARIO_REGISTRY if name.startswith("massive-"))
)
def test_massive_scenarios_byte_identical_on_slice(scenario_name):
    # The massive scenarios are too big to replay in full against the naive
    # stepper, so pin equivalence on a truncated slice with records retained
    # (record-level digests need the full per-request state).
    scenario = SCENARIO_REGISTRY[scenario_name]
    fast = run_scenario(
        scenario, seed=0, retain_records=True, max_requests=1500
    )
    naive = run_scenario(
        scenario, seed=0, retain_records=True, max_requests=1500, fast_forward=False
    )
    assert fast.records, "slice produced no finished requests"
    assert serving_digest(fast) == serving_digest(naive)


@pytest.mark.parametrize("scenario_name", sorted(FLEET_SCENARIO_REGISTRY))
def test_fleet_scenarios_byte_identical(scenario_name):
    scenario = FLEET_SCENARIO_REGISTRY[scenario_name]
    fast = run_fleet_scenario(scenario, seed=0)
    naive = run_fleet_scenario(scenario, seed=0, fast_forward=False)
    assert fleet_digest(fast) == fleet_digest(naive)


def _run_both(trace, policy="fcfs", tpot_cap=None):
    def engine(fast_forward):
        config = ServingConfig(
            num_gpus=1,
            batcher=BatcherConfig(
                max_batch_tokens=4096, prefill_chunk_tokens=2048, policy=policy
            ),
            tpot_cap=tpot_cap,
            fast_forward=fast_forward,
        )
        return ServingEngine(LLAMA_13B, config).run(trace, SLO())

    return serving_digest(engine(True)), serving_digest(engine(False))


class TestRandomTraces:
    """Hypothesis property: equivalence holds for arbitrary small traces."""

    @settings(max_examples=25, deadline=None)
    @given(
        triples=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
                st.integers(min_value=1, max_value=6000),
                st.integers(min_value=1, max_value=600),
            ),
            min_size=1,
            max_size=12,
        ),
        priority_policy=st.booleans(),
    )
    def test_equivalent_on_random_traces(self, triples, priority_policy):
        trace = replay_trace(sorted(triples))
        fast, naive = _run_both(
            trace, policy="priority" if priority_policy else "fcfs"
        )
        assert fast == naive

    def test_equivalent_under_preemption_pressure(self):
        # Oversubscribes the 1-GPU llama-13b KV pool: preempt/requeue cycles
        # interrupt decode stretches and the bound must stop exactly at the
        # first unsatisfiable block growth.
        trace = replay_trace([(0.0, 4096, 2048) for _ in range(12)])
        fast, naive = _run_both(trace)
        assert fast["preemptions"] > 0
        assert fast == naive

    def test_equivalent_with_tpot_cap(self):
        trace = replay_trace([(0.0, 8192, 256)] + [(0.5, 8192, 64)] * 4)
        fast, naive = _run_both(trace, tpot_cap=0.015)
        assert fast == naive

    def test_naive_knob_actually_disables_fast_forward(self):
        # The oracle must not silently take the fast path: a long single
        # decode costs the naive stepper one planning pass per iteration,
        # which the fast path's pricing cache makes observable here.
        trace = replay_trace([(0.0, 64, 512)])
        config = ServingConfig(num_gpus=1, fast_forward=False)
        engine = ServingEngine(LLAMA_13B, config)
        assert engine.pool.decode_stretch_length() == 0
        result = engine.run(trace, SLO())
        assert result.iterations >= 512


class TestPairPricing:
    """The inlined component-pair pricing is bit-equal to CostModel.time_of."""

    @settings(max_examples=60, deadline=None)
    @given(
        linear=st.floats(min_value=0.0, max_value=1e16, allow_nan=False),
        attention=st.floats(min_value=0.0, max_value=1e16, allow_nan=False),
        batch_tokens=st.integers(min_value=0, max_value=1 << 20),
    )
    def test_pair_time_matches_time_of(self, linear, attention, batch_tokens):
        pool = _Pool(LLAMA_13B, 2, ServingConfig(num_gpus=2))
        flops = FlopsBreakdown(linear=linear, attention=attention)
        if flops.total <= 0:
            reference = pool.config.iteration_overhead
        else:
            reference = (
                pool.costs.time_of(
                    flops * (1.0 / pool.num_gpus), PassKind.FORWARD, tokens=batch_tokens
                )
                + pool.config.iteration_overhead
            )
        assert pool._pair_time(linear, attention, batch_tokens) == reference

    def test_subclassed_cost_model_disables_inlining(self):
        class DoubledCosts(CostModel):
            def time_of(self, flops, kind, tokens, include_overhead=True):
                return 2.0 * super().time_of(flops, kind, tokens, include_overhead)

        pool = _Pool(LLAMA_13B, 1, ServingConfig(num_gpus=1), DoubledCosts())
        assert not pool.exact_pricing
        assert pool.decode_stretch_length() == 0

    def test_subclassed_cost_model_runs_on_the_reference_path(self):
        # A cost-model override must keep pricing every iteration virtually
        # (no inlined fast path, no coalescing) — and therefore be honoured.
        class DoubledCosts(CostModel):
            def time_of(self, flops, kind, tokens, include_overhead=True):
                return 2.0 * super().time_of(flops, kind, tokens, include_overhead)

        trace = replay_trace([(0.0, 512, 32), (0.2, 1024, 16)])
        config = ServingConfig(num_gpus=1, tpot_cap=0.05)
        baseline = ServingEngine(LLAMA_13B, config).run(trace, SLO())
        doubled = ServingEngine(LLAMA_13B, config, DoubledCosts()).run(trace, SLO())
        assert all(r.finished for r in doubled.records)
        assert doubled.metrics.duration > baseline.metrics.duration
