"""Tests for the fleet cluster engine (repro.fleet.cluster)."""

import pytest

from repro.constants import UnknownNameError
from repro.fleet.autoscaler import AutoscalerConfig
from repro.fleet.cluster import GPU_HOURLY_USD, FleetConfig, FleetEngine
from repro.fleet.failures import FailureEvent, FailurePlan
from repro.fleet.scenarios import get_fleet_scenario, run_fleet_scenario
from repro.model.config import get_model_config
from repro.serving.workload import poisson_trace, replay_trace

MODEL = get_model_config("llama-13b")


def _config(**overrides):
    defaults = dict(gpus_per_replica=1, initial_replicas=2, max_replicas=4, sessions=4)
    defaults.update(overrides)
    return FleetConfig(**defaults)


def _trace(num=12, seed=0, prompt=512, output=24, rate=4.0):
    return poisson_trace(
        num_requests=num,
        arrival_rate=rate,
        prompt_mean=prompt,
        output_mean=output,
        seed=seed,
    )


class TestFleetConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(gpus_per_replica=0)
        with pytest.raises(ValueError):
            FleetConfig(min_replicas=4, max_replicas=2)
        with pytest.raises(ValueError):
            FleetConfig(initial_replicas=9, max_replicas=8)
        with pytest.raises(ValueError):
            FleetConfig(gpu_types=())
        with pytest.raises(UnknownNameError):
            FleetConfig(gpu_types=("tpu-v5",))

    def test_unpriced_gpu_type_fails_fast(self, monkeypatch):
        # A device registered in GPU_REGISTRY but missing from the price
        # table must be rejected at config time, not after a full run.
        from repro.hardware.gpu import GPU_REGISTRY, HOPPER_80GB

        monkeypatch.setitem(
            GPU_REGISTRY, "hopper-141gb", HOPPER_80GB
        )
        with pytest.raises(ValueError, match="GPU_HOURLY_USD"):
            FleetConfig(gpu_types=("hopper-141gb",))

    def test_gpu_types_cycle_across_replicas(self):
        config = _config(gpu_types=("hopper-80gb", "ampere-80gb"))
        assert [config.gpu_for(i) for i in range(4)] == [
            "hopper-80gb",
            "ampere-80gb",
            "hopper-80gb",
            "ampere-80gb",
        ]

    def test_session_mapping(self):
        config = _config(sessions=4)
        trace = _trace(num=8)
        sessions = {config.session_of(r) for r in trace}
        assert sessions <= {0, 1, 2, 3}
        no_sessions = _config(sessions=0)
        assert no_sessions.session_of(trace[5]) == trace[5].request_id


class TestFleetEngineBasics:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            FleetEngine(MODEL, _config()).run([])

    def test_duplicate_request_ids_rejected(self):
        trace = replay_trace([(0.0, 64, 4), (0.1, 64, 4)])
        duplicated = [trace[0], trace[0]]
        with pytest.raises(ValueError):
            FleetEngine(MODEL, _config()).run(duplicated)

    def test_all_requests_finish_and_accounting_balances(self):
        trace = _trace(num=16)
        result = FleetEngine(MODEL, _config()).run(trace)
        assert result.metrics.num_requests == len(trace)
        assert all(record.finished for record in result.records)
        assert result.token_accounting_balanced
        assert result.tokens_admitted >= sum(r.prompt_tokens for r in trace)
        assert result.iterations > 0

    def test_fixed_fleet_never_scales(self):
        result = FleetEngine(MODEL, _config()).run(_trace())
        assert result.fleet.replicas_provisioned == 2
        assert result.fleet.replicas_peak == 2
        assert result.fleet.scale_up_events == 0
        assert result.fleet.scale_down_events == 0
        assert result.fleet.crashes == 0

    def test_gpu_hours_and_cost_metering(self):
        result = FleetEngine(MODEL, _config()).run(_trace())
        assert result.fleet.gpu_hours > 0
        # Both replicas are provisioned at t=0 and never retire, so they
        # accrue until the last request finishes: 2 replicas x 1 GPU each.
        end_time = max(record.finish_time for record in result.records)
        expected = end_time * 2 / 3600.0
        assert result.fleet.gpu_hours == pytest.approx(expected, rel=1e-6)
        assert result.fleet.cost_usd == pytest.approx(
            result.fleet.gpu_hours * GPU_HOURLY_USD["hopper-80gb"], rel=1e-6
        )

    def test_heterogeneous_fleet_meters_both_device_types(self):
        config = _config(gpu_types=("hopper-80gb", "ampere-80gb"))
        result = FleetEngine(MODEL, config).run(_trace(num=16))
        assert set(result.fleet.gpu_hours_by_type) == {"hopper-80gb", "ampere-80gb"}
        assert result.token_accounting_balanced

    def test_single_replica_fleet_matches_serving_style_run(self):
        # Degenerate fleet: one replica serves everything, nothing re-routes.
        config = _config(initial_replicas=1, min_replicas=1)
        result = FleetEngine(MODEL, config).run(_trace(num=10))
        assert result.fleet.replicas_provisioned == 1
        assert result.metrics.num_requests == 10

    def test_timeline_collection(self):
        result = FleetEngine(MODEL, _config()).run(_trace(), collect_timeline=True)
        assert result.timeline is not None
        spans = list(result.timeline.spans)
        assert len(spans) == result.iterations
        assert {span.device for span in spans} <= {0, 1}

    def test_timeline_skipped_by_default(self):
        result = FleetEngine(MODEL, _config()).run(_trace())
        assert result.timeline is None

    def test_to_text_renders_both_tables(self):
        result = FleetEngine(MODEL, _config()).run(_trace())
        text = result.to_text("smoke")
        assert "TTFT" in text and "router" in text and "GPU-hours" in text


class TestOutageHold:
    def test_requests_arriving_during_total_outage_are_held(self):
        # Both replicas crash before the trace lands; requests are held at
        # the router until a replica recovers, then everything completes.
        plan = FailurePlan(
            events=(
                FailureEvent(time=0.01, kind="crash", replica_index=0, duration=1.0),
                FailureEvent(time=0.01, kind="crash", replica_index=0, duration=2.0),
            )
        )
        trace = _trace(num=8, rate=20.0)
        result = FleetEngine(MODEL, _config(), failure_plan=plan).run(trace)
        assert result.fleet.crashes == 2
        assert result.metrics.num_requests == len(trace)
        assert all(record.finished for record in result.records)
        assert result.token_accounting_balanced
        # Held requests could only start after the first recovery.
        assert result.metrics.ttft_p99 >= 0.9


class TestScenarioRegistry:
    def test_unknown_scenario_lists_names(self):
        with pytest.raises(UnknownNameError, match="steady-chat"):
            get_fleet_scenario("global-fleet")

    def test_canary_scenario_runs_clean(self):
        scenario = get_fleet_scenario("canary-chat")
        result = run_fleet_scenario(scenario, seed=0)
        assert result.metrics.num_requests == len(scenario.make_trace(0))
        assert result.token_accounting_balanced
        assert result.metrics.goodput_fraction > 0.9

    def test_load_scale_compresses_arrivals(self):
        scenario = get_fleet_scenario("canary-chat")
        base = scenario.make_trace(0)
        compressed = scenario.make_trace(0, load_scale=2.0)
        assert len(base) == len(compressed)
        for slow, fast in zip(base, compressed):
            assert fast.arrival_time == pytest.approx(slow.arrival_time / 2.0)
            assert fast.prompt_tokens == slow.prompt_tokens

    def test_replica_and_autoscale_overrides(self):
        scenario = get_fleet_scenario("steady-chat")
        result = run_fleet_scenario(scenario, replicas=2, autoscale=False, seed=0)
        assert result.fleet.replicas_provisioned == 2
        assert result.fleet.scale_up_events == 0
        assert result.fleet.scale_down_events == 0
