"""Golden-metrics regression suite.

Every registered golden — the headline numbers of the paper's figures and
tables plus the serving scenarios' TTFT/TPOT/goodput — is recomputed from
scratch and diffed against its pinned ``tests/goldens/*.json`` file within
the recorded tolerances.  A failure here means a refactor shifted a number
the paper reproduction reports; regenerate deliberately with
``python -m repro.cli sweep golden --regenerate`` only when the shift is
intentional.
"""

import pytest

from repro.sweep import available_goldens, check_golden, goldens_dir


def test_golden_directory_is_populated():
    # The observability goldens (obs-*) share the directory but belong to
    # their own byte-exact suites (tests/test_obs_*.py); this inventory
    # covers only the sweep-registered metric goldens.
    recorded = {
        p.stem for p in goldens_dir().glob("*.json")
        if not p.stem.startswith("obs-")
    }
    assert recorded == set(available_goldens())


@pytest.mark.parametrize("name", available_goldens())
def test_golden(name):
    check = check_golden(name)
    assert check.ok, check.report()
