"""Shared-prefix KV caching invariants.

The prefix cache is only allowed to *skip work*, never to change what a
request observes or to corrupt the allocator's bookkeeping.  This suite pins
the contracts the tentpole relies on:

* **Block-key radix semantics** — ``prefix_block_keys`` maps symbolic
  prefixes onto block-granular content keys that agree exactly on shared
  paths and diverge at the first differing segment.
* **Refcount conservation** — node refcounts equal live references across
  admission, preemption, finish and fleet crashes.
* **Eviction safety** — LRU reclamation never frees a referenced block, and
  a reservation that would need referenced blocks fails instead.
* **Hit-rate arithmetic** — the reported hit rate matches a hand-computed
  trace token for token.
* **Off means off** — with ``prefix_caching=False`` a trace with declared
  prefixes is byte-identical to the same trace with prefixes stripped.
"""

from dataclasses import asdict, replace

import pytest

from repro.model.config import get_model_config
from repro.serving.engine import ServingConfig, ServingEngine
from repro.serving.metrics import SLO
from repro.serving.paged_kv import PagedKVAllocator
from repro.serving.prefix_cache import PrefixCache, prefix_block_keys
from repro.serving.workload import Request, agentic_tree_trace, shared_prefix_trace
from repro.fleet.cluster import FleetConfig, FleetEngine
from repro.fleet.failures import FailureEvent, FailurePlan

LLAMA_13B = get_model_config("llama-13b")


# ===========================================================================
# prefix_block_keys: the radix content-key scheme
# ===========================================================================
class TestPrefixBlockKeys:
    def test_single_segment_full_blocks_only(self):
        keys = prefix_block_keys((("sys", 1000),), 256)
        # 1000 tokens cover three full 256-token blocks; the partial tail
        # block is not shareable.
        assert len(keys) == 3
        assert keys[0] == (("sys",), 0)
        assert keys[2] == (("sys",), 2)

    def test_shared_path_agrees_divergent_path_does_not(self):
        a = prefix_block_keys((("sys", 512), (("doc", 1), 512)), 256)
        b = prefix_block_keys((("sys", 512), (("doc", 2), 512)), 256)
        assert a[:2] == b[:2]  # the system-prompt blocks are shared
        assert a[2] != b[2]  # the first document block diverges
        assert len(a) == 4

    def test_segment_spanning_a_block_boundary_chains_the_path(self):
        # 300 + 300 tokens: block 0 is covered by segment "a" alone, block 1
        # needs both segments — its key embeds the two-segment path.
        keys = prefix_block_keys((("a", 300), ("b", 300)), 256)
        assert keys[0] == (("a",), 0)
        assert keys[1] == (("a", "b"), 1)

    def test_empty_prefix_and_bad_block_size(self):
        assert prefix_block_keys((), 256) == ()
        with pytest.raises(ValueError):
            prefix_block_keys((("a", 10),), 0)


# ===========================================================================
# PrefixCache: trie, refcounts, LRU
# ===========================================================================
class TestPrefixCacheUnit:
    def _keys(self, n):
        return prefix_block_keys((("sys", 256 * n),), 256)

    def _publish_chain(self, cache, rid, keys):
        for i, key in enumerate(keys):
            cache.publish(rid, key, ("pfx", key))

    def test_acquire_release_refcounts_conserve(self):
        cache = PrefixCache()
        keys = self._keys(3)
        self._publish_chain(cache, "r1", keys)
        assert cache.refs_of("r1") == 3
        assert cache.acquire("r2", keys) == 3
        assert cache.check_refcounts()
        cache.release("r1")
        assert cache.check_refcounts()
        assert cache.evictable_blocks == 0  # r2 still references everything
        cache.release("r2")
        assert cache.evictable_blocks == 3
        assert cache.check_refcounts()

    def test_longest_prefix_match_stops_at_first_miss(self):
        cache = PrefixCache()
        keys = self._keys(4)
        self._publish_chain(cache, "r1", keys[:2])
        assert cache.match(keys) == 2
        assert cache.acquire("r2", keys) == 2
        assert cache.refs_of("r2") == 2

    def test_double_acquire_rejected(self):
        cache = PrefixCache()
        keys = self._keys(2)
        self._publish_chain(cache, "r1", keys)
        cache.acquire("r2", keys)
        with pytest.raises(ValueError):
            cache.acquire("r2", keys)

    def test_eviction_is_lru_and_leaf_first(self):
        cache = PrefixCache()
        short = prefix_block_keys((("a", 512),), 256)
        long = prefix_block_keys((("b", 768),), 256)
        self._publish_chain(cache, "r1", short)
        self._publish_chain(cache, "r2", long)
        cache.release("r1")  # "a" chain unreferenced first -> older in LRU
        cache.release("r2")
        freed = cache.evict(2)
        # LRU order reclaims the "a" chain first; within it leaves go first,
        # so the chunk keys come back deepest-block-first.
        assert freed == [("pfx", short[1]), ("pfx", short[0])]
        assert cache.match(short) == 0
        assert cache.match(long) == 3
        assert cache.check_refcounts()

    def test_evict_never_touches_referenced_blocks(self):
        cache = PrefixCache()
        keys = self._keys(3)
        self._publish_chain(cache, "r1", keys)
        assert cache.evict(3) == []  # everything referenced: nothing to take
        cache.release("r1")
        cache.acquire("r2", keys[:2])  # re-reference the leading two
        freed = cache.evict(3)
        assert freed == [("pfx", keys[2])]  # only the unreferenced tail
        assert cache.refs_of("r2") == 2
        assert cache.check_refcounts()

    def test_publish_dedup_references_the_existing_node(self):
        cache = PrefixCache()
        keys = self._keys(1)
        assert cache.publish("r1", keys[0], ("pfx", keys[0])) is True
        assert cache.publish("r2", keys[0], ("dup", keys[0])) is False
        assert cache.dedup_blocks == 1
        assert cache.check_refcounts()


# ===========================================================================
# Allocator-level safety under memory pressure
# ===========================================================================
class TestAllocatorPrefixPressure:
    def _allocator_with_published_prefix(self, blocks=8, block_tokens=4):
        alloc = PagedKVAllocator(blocks, block_tokens, prefix_caching=True)
        keys = prefix_block_keys((("sys", 4 * block_tokens),), block_tokens)
        assert alloc.acquire_prefix("a", keys) == 0  # cold cache
        assert alloc.reserve("a", 4 * block_tokens)
        assert alloc.publish_prefix("a", keys, 4 * block_tokens) == 4
        return alloc, keys

    def test_reserve_fails_rather_than_free_referenced_blocks(self):
        alloc, keys = self._allocator_with_published_prefix()
        assert alloc.acquire_prefix("b", keys) == 4  # b pins the prefix
        alloc.release("a")
        # 4 of 8 blocks are referenced by b; a 5-block private reservation
        # must fail without touching them.
        assert not alloc.reserve("c", 5 * 4)
        assert alloc.prefix.match(keys) == 4
        assert alloc.prefix.check_refcounts()
        assert alloc.reserve("c", 4 * 4)  # exactly the free space works

    def test_reserve_reclaims_unreferenced_blocks_lru_first(self):
        alloc, keys = self._allocator_with_published_prefix()
        alloc.release("a")  # prefix now unreferenced but resident
        assert alloc.reclaimable_blocks == 4
        stored_before = alloc.stored_tokens
        assert alloc.reserve("c", 7 * 4)  # needs 7 blocks: reclaims 3
        assert alloc.prefix.evicted_blocks == 3
        assert alloc.stored_tokens == stored_before - 3 * 4 + 7 * 4
        assert alloc.prefix.check_refcounts()

    def test_release_keeps_physical_token_accounting_exact(self):
        alloc, keys = self._allocator_with_published_prefix()
        assert alloc.acquire_prefix("b", keys) == 4
        assert alloc.reserve("b", 4 * 4 + 3)  # shared span + 3 private tokens
        assert alloc.stored_tokens == 4 * 4 + 3  # shared counted once
        alloc.release("a")
        assert alloc.stored_tokens == 4 * 4 + 3
        alloc.release("b")
        assert alloc.stored_tokens == 4 * 4  # resident unreferenced prefix
        alloc.clear()
        assert alloc.stored_tokens == 0
        assert alloc.used_blocks == 0


# ===========================================================================
# Engine-level invariants
# ===========================================================================
def _engine(prefix_caching=True, **config_kwargs):
    config = ServingConfig(num_gpus=1, prefix_caching=prefix_caching, **config_kwargs)
    return ServingEngine(LLAMA_13B, config)


def serving_digest(result):
    return (
        asdict(result.metrics),
        [
            (r.request.request_id, r.first_token_time, r.finish_time, r.preemptions)
            for r in result.records
        ],
        result.iterations,
        result.tokens_admitted,
        result.tokens_prefilled,
        result.tokens_preempted_requeued,
        result.preemptions,
        [(s.device, s.start, s.end) for s in result.timeline.spans],
    )


class TestEngineInvariants:
    def test_hit_rate_matches_hand_computed_trace(self):
        # Three sequential requests sharing a 1024-token system prompt with
        # 256-token blocks: the first misses all 4 prefix blocks, the other
        # two hit all 4 -> 2 * 1024 cached tokens, everything else prefilled.
        prefix = (("sys", 1024),)
        trace = [
            Request(i, 50.0 * i, 1024 + 256, 8, prefix=prefix) for i in range(3)
        ]
        result = _engine().run(trace, SLO())
        assert result.prefix_hit_tokens == 2 * 1024
        assert result.prefix_hit_requests == 2
        total_prompt = 3 * 1280
        assert result.tokens_prefilled == total_prompt - 2048
        assert result.metrics.prefix_hit_rate == 2048 / total_prompt
        assert result.prefix_hit_rate == 2048 / total_prompt
        assert result.token_accounting_balanced

    def test_refcounts_conserve_and_drain_after_run(self):
        trace = shared_prefix_trace(
            num_requests=40, arrival_rate=3.0, prefix_tokens=2048,
            suffix_mean=128, output_mean=64, seed=1,
        )
        engine = _engine()
        result = engine.run(trace, SLO())
        cache = engine.pool.allocator.prefix
        assert cache.check_refcounts()
        assert cache.referenced_requests() == []  # every request released
        assert result.prefix_hit_tokens > 0

    def test_preemption_pressure_conserves_refcounts_and_tokens(self):
        # Near-simultaneous long decodes oversubscribe the 1-GPU KV pool
        # even with the prefix shared, forcing preempt/requeue cycles
        # through the prefix-held admission path.
        trace = [
            Request(i, 0.001 * i, 4096 + 128, 4096, prefix=(("sys", 4096),))
            for i in range(16)
        ]
        engine = _engine()
        result = engine.run(trace, SLO())
        assert result.preemptions > 0
        cache = engine.pool.allocator.prefix
        assert cache.check_refcounts()
        assert cache.referenced_requests() == []
        assert result.token_accounting_balanced
        # Preempted requests re-match the shared prefix on re-admission, so
        # hits exceed the one-per-request of the happy path.
        assert result.prefix_hit_requests > 15

    def test_concurrent_identical_prefixes_dedup_copy_on_write(self):
        # Both requests are admitted in the same iteration, prefill the same
        # prefix privately, and the second publication dedups block-by-block.
        trace = [Request(i, 0.0, 1024 + 64, 8, prefix=(("sys", 1024),)) for i in range(2)]
        engine = _engine()
        engine.run(trace, SLO())
        cache = engine.pool.allocator.prefix
        assert cache.dedup_blocks > 0
        assert cache.check_refcounts()

    def test_prefix_caching_off_ignores_declared_prefixes(self):
        # With the feature off, a trace with prefixes must be byte-identical
        # to the same trace with every prefix stripped.
        trace = agentic_tree_trace(
            num_sessions=4, turns_per_session=4, scaffold_tokens=2048,
            turn_tokens=256, output_mean=64, seed=3,
        )
        stripped = [replace(r, prefix=()) for r in trace]
        with_prefix = _engine(prefix_caching=False).run(trace, SLO())
        without = _engine(prefix_caching=False).run(stripped, SLO())
        assert serving_digest(with_prefix) == serving_digest(without)
        assert with_prefix.prefix_hit_tokens == 0

    def test_cached_blocks_shorten_ttft(self):
        prefix = (("sys", 8192),)
        trace = [Request(i, 30.0 * i, 8192 + 256, 16, prefix=prefix) for i in range(4)]
        on = _engine().run(trace, SLO())
        off = _engine(prefix_caching=False).run(trace, SLO())
        first = on.records[0].ttft
        later = [r.ttft for r in on.records[1:]]
        assert all(t < first / 2 for t in later)  # hits skip the 8K prefill
        assert off.records[1].ttft > on.records[1].ttft * 2


class TestFleetCrashInvariants:
    def test_crash_storms_conserve_refcounts_and_accounting(self):
        trace = shared_prefix_trace(
            num_requests=60, arrival_rate=4.0, prefix_tokens=4096,
            suffix_mean=128, output_mean=96, seed=2,
        )
        plan = FailurePlan(
            events=(
                FailureEvent(time=4.0, kind="crash", replica_index=0, duration=10.0),
                FailureEvent(time=9.0, kind="crash", replica_index=1, duration=10.0),
                FailureEvent(time=14.0, kind="slow", replica_index=0, duration=8.0, slowdown=2.0),
            )
        )
        config = FleetConfig(
            gpus_per_replica=1, initial_replicas=3, prefix_caching=True
        )
        engine = FleetEngine(LLAMA_13B, config, router="kv-aware", failure_plan=plan)
        result = engine.run(trace, SLO())
        assert result.fleet.crashes == 2
        assert result.token_accounting_balanced
        assert result.prefix_hit_tokens > 0
        for replica in engine._replicas:
            if replica.pool is None:
                continue
            cache = replica.pool.allocator.prefix
            assert cache.check_refcounts()
            assert cache.referenced_requests() == []
