"""Tests for the numeric-engine optimizers (SGD, Adam)."""

import numpy as np
import pytest

from repro.numerics.model import ModelGradients, ModelParams, NumericModelConfig, ReferenceModel
from repro.numerics.optimizer import SGD, Adam, named_parameters
from repro.numerics.pipeline_runner import SlimPipeNumericRunner

CONFIG = NumericModelConfig(num_layers=2, hidden_size=16, num_heads=4, num_groups=2, ffn_size=24, vocab_size=32)


def make_problem(seed=0, tokens=16):
    params = ModelParams.init(CONFIG, seed=seed)
    rng = np.random.default_rng(seed + 1)
    data = rng.integers(0, CONFIG.vocab_size, size=tokens)
    targets = np.roll(data, -1)
    return params, data, targets


class TestNamedParameters:
    def test_covers_every_gradient_name(self):
        params, _, _ = make_problem()
        grads = ModelGradients.zeros_like(params)
        assert {name for name, _ in named_parameters(params)} == set(grads.flatten())

    def test_yields_views_not_copies(self):
        params, _, _ = make_problem()
        for name, value in named_parameters(params):
            value += 0.0  # in-place touch must be allowed
            if name == "final_norm":
                value[0] = 123.0
        assert params.final_norm[0] == 123.0


class TestSGD:
    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD(learning_rate=0.1, momentum=1.0)

    def test_reduces_loss(self):
        params, tokens, targets = make_problem(seed=2)
        model = ReferenceModel(params)
        optimizer = SGD(learning_rate=0.5)
        loss0, grads = model.loss_and_gradients(tokens, targets)
        optimizer.step(params, grads)
        loss1, _ = model.loss_and_gradients(tokens, targets)
        assert loss1 < loss0
        assert optimizer.steps == 1

    def test_momentum_accumulates_velocity(self):
        params, tokens, targets = make_problem(seed=3)
        model = ReferenceModel(params)
        optimizer = SGD(learning_rate=0.1, momentum=0.9)
        for _ in range(3):
            _, grads = model.loss_and_gradients(tokens, targets)
            optimizer.step(params, grads)
        assert optimizer._velocity  # populated lazily
        assert optimizer.steps == 3

    def test_matches_manual_update(self):
        params, tokens, targets = make_problem(seed=4)
        reference = ModelParams.init(CONFIG, seed=4)
        model = ReferenceModel(params)
        _, grads = model.loss_and_gradients(tokens, targets)
        SGD(learning_rate=0.25).step(params, grads)
        np.testing.assert_allclose(
            params.embedding, reference.embedding - 0.25 * grads.embedding
        )


class TestAdam:
    def test_validation(self):
        with pytest.raises(ValueError):
            Adam(learning_rate=-1)
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(eps=0.0)
        with pytest.raises(ValueError):
            Adam(weight_decay=-0.1)

    def test_first_step_is_learning_rate_sized(self):
        """With bias correction, the very first Adam step is ~lr * sign(grad)."""
        params, tokens, targets = make_problem(seed=5)
        before = params.output_weight.copy()
        model = ReferenceModel(params)
        _, grads = model.loss_and_gradients(tokens, targets)
        Adam(learning_rate=1e-2).step(params, grads)
        delta = params.output_weight - before
        mask = np.abs(grads.output_weight) > 1e-6
        np.testing.assert_allclose(
            np.abs(delta[mask]), 1e-2, rtol=1e-3
        )

    def test_training_converges_better_than_single_step(self):
        params, tokens, targets = make_problem(seed=6)
        model = ReferenceModel(params)
        optimizer = Adam(learning_rate=5e-2)
        losses = []
        for _ in range(10):
            loss, grads = model.loss_and_gradients(tokens, targets)
            losses.append(loss)
            optimizer.step(params, grads)
        assert losses[-1] < losses[0] * 0.8
        assert optimizer.state_bytes() > 0

    def test_weight_decay_shrinks_weights(self):
        params, tokens, targets = make_problem(seed=7)
        model = ReferenceModel(params)
        _, grads = model.loss_and_gradients(tokens, targets)
        # Zero out the gradient of one tensor; only weight decay should move it.
        grads.final_norm[:] = 0.0
        before = params.final_norm.copy()
        Adam(learning_rate=1e-2, weight_decay=0.1).step(params, grads)
        assert np.all(np.abs(params.final_norm) < np.abs(before) + 1e-12)
        assert not np.allclose(params.final_norm, before)

    def test_training_through_the_slimpipe_runner(self):
        """End-to-end: Adam + gradients from the sliced multi-device runner."""
        params, tokens, targets = make_problem(seed=8, tokens=24)
        runner = SlimPipeNumericRunner(params, num_devices=2, num_slices=4)
        optimizer = Adam(learning_rate=5e-2)
        first, _ = runner.loss_and_gradients(tokens, targets)
        for _ in range(5):
            _, grads = runner.loss_and_gradients(tokens, targets)
            optimizer.step(params, grads)
        last, _ = runner.loss_and_gradients(tokens, targets)
        assert last < first
