"""Tests for the Table 2 closed forms and their agreement with the schedule builders."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import build_slimpipe_schedule
from repro.schedules import build_1f1b_schedule, build_gpipe_schedule
from repro.schedules.formulas import (
    activation_memory_factor,
    available_schemes,
    bubble_fraction_estimate,
    slimpipe_accumulated_activation_factor,
)
from repro.sim.engine import SimulationEngine, UniformCostProvider


class TestActivationMemoryFactor:
    def test_table2_values_at_reference_point(self):
        """Spot-check the Table 2 column at p=8, m=16, n=32, v=2."""
        p, m, n, v = 8, 16, 32, 2
        assert activation_memory_factor("gpipe", p, m) == pytest.approx(m / p)
        assert activation_memory_factor("1f1b", p, m) == pytest.approx(1.0)
        assert activation_memory_factor("interleaved-1f1b", p, m, v=v) == pytest.approx(
            1 + (p - 1) / (v * p)
        )
        assert activation_memory_factor("zb-v", p, m) == pytest.approx(1.0)
        assert activation_memory_factor("v-half", p, m) == pytest.approx(0.5 + 1 / p)
        assert activation_memory_factor("slimpipe", p, m, n, v) == pytest.approx(
            1 / p + 2 * (p - 1) / (n * v * p)
        )

    def test_slimpipe_is_the_most_memory_thrifty(self):
        p, m, n, v = 8, 8, 32, 2
        slim = activation_memory_factor("slimpipe", p, m, n, v)
        for scheme in available_schemes():
            if scheme == "slimpipe":
                continue
            assert slim <= activation_memory_factor(scheme, p, m, n, v) + 1e-12

    def test_slimpipe_scales_inversely_with_p(self):
        """Figure 1: SlimPipe activation memory ~ 1/p; classic PP stays ~constant."""
        slim = [activation_memory_factor("slimpipe", p, 16, 8 * p) for p in (2, 4, 8, 16)]
        classic = [activation_memory_factor("1f1b", p, 16) for p in (2, 4, 8, 16)]
        assert slim[0] / slim[-1] > 6  # close to 16/2 = 8x reduction
        assert classic == [1.0] * 4

    def test_matches_1f1b_schedule_builder(self):
        for p, m in [(4, 8), (8, 4), (2, 2)]:
            schedule = build_1f1b_schedule(p, m)
            peak_microbatches = max(schedule.max_inflight_activations())
            assert activation_memory_factor("1f1b", p, m) == pytest.approx(
                peak_microbatches / p
            )

    def test_matches_gpipe_schedule_builder(self):
        for p, m in [(4, 8), (2, 6)]:
            schedule = build_gpipe_schedule(p, m)
            peak = max(schedule.max_inflight_activations())
            assert activation_memory_factor("gpipe", p, m) == pytest.approx(peak / p)

    def test_matches_slimpipe_schedule_builder(self):
        for p, m, n, v in [(4, 4, 8, 1), (4, 2, 8, 2), (8, 4, 16, 1)]:
            schedule = build_slimpipe_schedule(p, m, n, v)
            peak_units = max(schedule.max_inflight_activations())
            # One unit = M_a / (n * v * p).
            assert activation_memory_factor("slimpipe", p, m, n, v) == pytest.approx(
                peak_units / (n * v * p)
            )

    def test_eq1_factor(self):
        assert slimpipe_accumulated_activation_factor(4, 8) == pytest.approx(1.75 / 4)
        assert slimpipe_accumulated_activation_factor(4, 8, 2) == pytest.approx(
            (1 + 6 / 16) / 4
        )

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            activation_memory_factor("nope", 4, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            activation_memory_factor("1f1b", 0, 4)
        with pytest.raises(ValueError):
            bubble_fraction_estimate("1f1b", 4, 4, attention_share=2.0)


class TestBubbleFraction:
    def test_ordering_matches_figure3(self):
        """Figure 3 (p=8, m=4, long context): SlimPipe < interleaved < 1F1B ~ ZB-variants."""
        p, m = 8, 4
        share = 0.8  # 256K context is strongly attention-dominated
        slim = bubble_fraction_estimate("slimpipe", p, m, 4 * p, 5, share)
        inter = bubble_fraction_estimate("interleaved-1f1b", p, m, v=5, attention_share=share)
        plain = bubble_fraction_estimate("1f1b", p, m, attention_share=share)
        vhalf = bubble_fraction_estimate("v-half", p, m, attention_share=share)
        assert slim < inter < plain
        assert slim < 0.05
        assert vhalf > inter

    def test_zbv_zero_bubble_without_attention(self):
        assert bubble_fraction_estimate("zb-v", 8, 8, attention_share=0.0) == 0.0

    def test_zbv_bubbles_grow_with_attention_share(self):
        low = bubble_fraction_estimate("zb-v", 8, 8, attention_share=0.1)
        high = bubble_fraction_estimate("zb-v", 8, 8, attention_share=0.9)
        assert high > low

    def test_slimpipe_bubble_decreases_with_slices(self):
        values = [
            bubble_fraction_estimate("slimpipe", 4, 2, n, attention_share=0.5)
            for n in (4, 8, 16, 32)
        ]
        assert values == sorted(values, reverse=True)

    def test_more_microbatches_reduce_warmup_bubbles(self):
        for scheme in ("gpipe", "1f1b", "interleaved-1f1b", "slimpipe"):
            few = bubble_fraction_estimate(scheme, 8, 2)
            many = bubble_fraction_estimate(scheme, 8, 32)
            assert many < few

    def test_simulated_1f1b_bubble_matches_formula(self):
        """The closed form and the discrete-event simulator agree for 1F1B."""
        p, m = 4, 8
        schedule = build_1f1b_schedule(p, m)
        # Uniform costs with backward = forward makes the formula exact.
        timeline = SimulationEngine(schedule, UniformCostProvider(1.0, 1.0)).run()
        formula = bubble_fraction_estimate("1f1b", p, m)
        assert timeline.bubble_fraction() == pytest.approx(formula, abs=0.02)

    def test_simulated_slimpipe_bubble_below_formula_bound(self):
        p, m, n = 4, 2, 16
        schedule = build_slimpipe_schedule(p, m, n)
        timeline = SimulationEngine(schedule, UniformCostProvider(1.0, 1.0)).run()
        bound = (p - 1) / (n * m)
        assert timeline.bubble_fraction() <= bound / (1 + bound) + 0.05

    @settings(max_examples=40, deadline=None)
    @given(
        scheme=st.sampled_from(sorted(available_schemes())),
        p=st.integers(min_value=1, max_value=16),
        m=st.integers(min_value=1, max_value=64),
        share=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_property_fraction_in_unit_interval(self, scheme, p, m, share):
        value = bubble_fraction_estimate(scheme, p, m, n=4 * p, v=2, attention_share=share)
        assert 0.0 <= value < 1.0

    @settings(max_examples=30, deadline=None)
    @given(
        p=st.integers(min_value=1, max_value=16),
        m=st.integers(min_value=1, max_value=32),
    )
    def test_property_memory_factors_positive(self, p, m):
        for scheme in available_schemes():
            assert activation_memory_factor(scheme, p, m, n=2 * p, v=2) > 0.0
