"""Gradient checks for the numeric engine's differentiable primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.numerics.functional import (
    cross_entropy_backward,
    cross_entropy_forward,
    embedding_backward,
    embedding_forward,
    linear_backward,
    linear_forward,
    rmsnorm_backward,
    rmsnorm_forward,
    silu,
    swiglu_backward,
    swiglu_forward,
)

RNG = np.random.default_rng(0)


def numerical_grad(fn, x, eps=1e-6):
    """Central finite differences of a scalar-valued function of an array."""
    grad = np.zeros_like(x, dtype=float)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = fn()
        flat[i] = orig - eps
        f_minus = fn()
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2 * eps)
    return grad


class TestLinear:
    def test_forward_matches_matmul(self):
        x = RNG.standard_normal((5, 3))
        w = RNG.standard_normal((3, 4))
        b = RNG.standard_normal(4)
        y, _ = linear_forward(x, w, b)
        np.testing.assert_allclose(y, x @ w + b)

    def test_backward_gradients(self):
        x = RNG.standard_normal((4, 3))
        w = RNG.standard_normal((3, 5))
        b = RNG.standard_normal(5)
        dy = RNG.standard_normal((4, 5))

        def loss():
            return float(np.sum(linear_forward(x, w, b)[0] * dy))

        _, cache = linear_forward(x, w, b)
        dx, dw, db = linear_backward(dy, cache)
        np.testing.assert_allclose(dx, numerical_grad(loss, x), atol=1e-6)
        np.testing.assert_allclose(dw, numerical_grad(loss, w), atol=1e-6)
        np.testing.assert_allclose(db, numerical_grad(loss, b), atol=1e-6)

    def test_no_bias(self):
        x = RNG.standard_normal((4, 3))
        w = RNG.standard_normal((3, 5))
        dy = RNG.standard_normal((4, 5))
        _, cache = linear_forward(x, w)
        _, _, db = linear_backward(dy, cache)
        assert db is None

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            linear_forward(RNG.standard_normal((4, 3)), RNG.standard_normal((5, 2)))
        with pytest.raises(ValueError):
            linear_forward(RNG.standard_normal(3), RNG.standard_normal((3, 2)))


class TestRMSNorm:
    def test_forward_unit_rms(self):
        x = RNG.standard_normal((6, 8))
        y, _ = rmsnorm_forward(x, np.ones(8))
        rms = np.sqrt(np.mean(y * y, axis=-1))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-5)

    def test_backward_gradients(self):
        x = RNG.standard_normal((3, 6))
        w = RNG.standard_normal(6)
        dy = RNG.standard_normal((3, 6))

        def loss():
            return float(np.sum(rmsnorm_forward(x, w)[0] * dy))

        _, cache = rmsnorm_forward(x, w)
        dx, dw = rmsnorm_backward(dy, cache)
        np.testing.assert_allclose(dx, numerical_grad(loss, x), atol=1e-6)
        np.testing.assert_allclose(dw, numerical_grad(loss, w), atol=1e-6)

    def test_weight_shape_validation(self):
        with pytest.raises(ValueError):
            rmsnorm_forward(RNG.standard_normal((3, 6)), np.ones(5))

    @settings(max_examples=20, deadline=None)
    @given(
        tokens=st.integers(min_value=1, max_value=8),
        hidden=st.integers(min_value=1, max_value=16),
    )
    def test_property_scale_invariance_direction(self, tokens, hidden):
        """RMSNorm output is invariant to positive rescaling of its input."""
        rng = np.random.default_rng(tokens * 31 + hidden)
        x = rng.standard_normal((tokens, hidden)) + 0.1
        w = rng.standard_normal(hidden)
        y1, _ = rmsnorm_forward(x, w, eps=0.0)
        y2, _ = rmsnorm_forward(3.7 * x, w, eps=0.0)
        np.testing.assert_allclose(y1, y2, rtol=1e-9)


class TestSwiGLU:
    def test_forward_matches_definition(self):
        g = RNG.standard_normal((4, 5))
        u = RNG.standard_normal((4, 5))
        y, _ = swiglu_forward(g, u)
        np.testing.assert_allclose(y, silu(g) * u)

    def test_backward_gradients(self):
        g = RNG.standard_normal((3, 4))
        u = RNG.standard_normal((3, 4))
        dy = RNG.standard_normal((3, 4))

        def loss():
            return float(np.sum(swiglu_forward(g, u)[0] * dy))

        _, cache = swiglu_forward(g, u)
        dg, du = swiglu_backward(dy, cache)
        np.testing.assert_allclose(dg, numerical_grad(loss, g), atol=1e-6)
        np.testing.assert_allclose(du, numerical_grad(loss, u), atol=1e-6)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            swiglu_forward(np.zeros((2, 3)), np.zeros((3, 2)))


class TestEmbedding:
    def test_forward_gathers_rows(self):
        table = RNG.standard_normal((10, 4))
        ids = np.array([1, 3, 3, 9])
        out, _ = embedding_forward(ids, table)
        np.testing.assert_allclose(out, table[ids])

    def test_backward_scatter_adds(self):
        table = RNG.standard_normal((10, 4))
        ids = np.array([2, 2, 5])
        dy = RNG.standard_normal((3, 4))
        _, cache = embedding_forward(ids, table)
        dt = embedding_backward(dy, cache)
        np.testing.assert_allclose(dt[2], dy[0] + dy[1])
        np.testing.assert_allclose(dt[5], dy[2])
        assert np.all(dt[[0, 1, 3, 4, 6, 7, 8, 9]] == 0)

    def test_out_of_range_ids(self):
        table = RNG.standard_normal((4, 2))
        with pytest.raises(ValueError):
            embedding_forward(np.array([0, 4]), table)
        with pytest.raises(ValueError):
            embedding_forward(np.array([[0, 1]]), table)


class TestCrossEntropy:
    def test_matches_manual_log_softmax(self):
        logits = RNG.standard_normal((5, 7))
        targets = RNG.integers(0, 7, size=5)
        loss, _ = cross_entropy_forward(logits, targets)
        log_probs = logits - np.log(np.exp(logits).sum(axis=-1, keepdims=True))
        expected = -log_probs[np.arange(5), targets].mean()
        assert loss == pytest.approx(expected)

    def test_backward_gradients(self):
        logits = RNG.standard_normal((4, 6))
        targets = RNG.integers(0, 6, size=4)

        def loss():
            return cross_entropy_forward(logits, targets)[0]

        _, cache = cross_entropy_forward(logits, targets)
        dlogits = cross_entropy_backward(1.0, cache)
        np.testing.assert_allclose(dlogits, numerical_grad(loss, logits), atol=1e-6)

    def test_custom_normalizer_sums_to_full_loss(self):
        """Per-slice losses with a shared normalizer must add to the full loss."""
        logits = RNG.standard_normal((8, 5))
        targets = RNG.integers(0, 5, size=8)
        full, _ = cross_entropy_forward(logits, targets)
        parts = 0.0
        for start in range(0, 8, 2):
            part, _ = cross_entropy_forward(
                logits[start : start + 2], targets[start : start + 2], normalizer=8
            )
            parts += part
        assert parts == pytest.approx(full)

    def test_validation(self):
        with pytest.raises(ValueError):
            cross_entropy_forward(RNG.standard_normal((4, 5)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            cross_entropy_forward(
                RNG.standard_normal((4, 5)), np.zeros(4, dtype=int), normalizer=0
            )

    def test_gradient_sums_to_zero_per_token(self):
        logits = RNG.standard_normal((6, 9))
        targets = RNG.integers(0, 9, size=6)
        _, cache = cross_entropy_forward(logits, targets)
        dlogits = cross_entropy_backward(1.0, cache)
        np.testing.assert_allclose(dlogits.sum(axis=-1), 0.0, atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(
        logits=hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 6), st.integers(2, 8)),
            elements=st.floats(min_value=-5, max_value=5),
        )
    )
    def test_property_loss_nonnegative(self, logits):
        targets = np.zeros(logits.shape[0], dtype=int)
        loss, _ = cross_entropy_forward(logits, targets)
        assert loss >= -1e-9
