"""Tests for the golden-metrics harness itself (record, check, perturb).

``tests/test_goldens.py`` asserts the committed goldens still hold; this
module asserts the *harness* does its job — tolerances, missing/extra
metrics, fingerprint staleness, and the headline guarantee that perturbing a
modelled constant makes the check fail.
"""

import dataclasses

import pytest

import repro.analysis.figures as figures
import repro.hardware.gpu as gpu_module
import repro.sweep.golden as golden_module
from repro.constants import UnknownNameError
from repro.hardware.topology import ClusterTopology
from repro.sweep import check_golden, code_fingerprint, record_golden
from repro.sweep.golden import GoldenDefinition, golden_path


def _definition(values, name="unit", rtol=1e-6, atol=1e-9):
    return GoldenDefinition(name=name, compute=lambda: dict(values), rtol=rtol, atol=atol)


class TestRecordAndCheck:
    def test_roundtrip(self, tmp_path):
        definition = _definition({"a": 1.0, "b": "label", "c": 3})
        path = record_golden("unit", directory=tmp_path, definition=definition)
        assert path == golden_path("unit", tmp_path) and path.exists()
        check = check_golden("unit", directory=tmp_path, definition=definition)
        assert check.ok, check.report()

    def test_missing_file_fails(self, tmp_path):
        check = check_golden(
            "unit", directory=tmp_path, definition=_definition({"a": 1.0})
        )
        assert not check.ok
        assert any("missing" in failure for failure in check.failures)

    def test_drift_outside_tolerance_fails(self, tmp_path):
        record_golden("unit", directory=tmp_path, definition=_definition({"a": 100.0}))
        drifted = _definition({"a": 100.0 * (1 + 1e-4)})
        check = check_golden("unit", directory=tmp_path, definition=drifted)
        assert not check.ok and "a:" in check.failures[0]

    def test_drift_within_tolerance_passes(self, tmp_path):
        record_golden("unit", directory=tmp_path, definition=_definition({"a": 100.0}))
        nudged = _definition({"a": 100.0 * (1 + 1e-8)})
        assert check_golden("unit", directory=tmp_path, definition=nudged).ok

    def test_string_and_bool_metrics_compare_exactly(self, tmp_path):
        record_golden(
            "unit", directory=tmp_path, definition=_definition({"s": "x", "f": True})
        )
        flipped = _definition({"s": "x", "f": False})
        check = check_golden("unit", directory=tmp_path, definition=flipped)
        assert not check.ok and "f:" in check.failures[0]

    def test_appearing_and_disappearing_metrics_fail(self, tmp_path):
        record_golden("unit", directory=tmp_path, definition=_definition({"a": 1.0}))
        changed = _definition({"b": 2.0})
        check = check_golden("unit", directory=tmp_path, definition=changed)
        assert not check.ok
        report = check.report()
        assert "disappeared" in report and "new metric" in report

    def test_unknown_golden_name(self):
        with pytest.raises(UnknownNameError, match="available"):
            check_golden("no-such-golden")


class TestConstantPerturbation:
    """The acceptance guarantee: perturbing a constant fails the check."""

    def test_perturbing_gpu_throughput_fails_the_metrics(self, tmp_path, monkeypatch):
        record_golden("fig07", directory=tmp_path)
        assert check_golden("fig07", directory=tmp_path).ok

        real_cluster = figures.hopper_cluster

        def degraded_cluster(num_gpus, gpus_per_node=8):
            cluster = real_cluster(num_gpus, gpus_per_node)
            slower_gpu = dataclasses.replace(
                cluster.gpu, peak_flops=cluster.gpu.peak_flops * 1.05
            )
            return ClusterTopology(
                num_nodes=cluster.num_nodes,
                gpus_per_node=cluster.gpus_per_node,
                gpu=slower_gpu,
            )

        monkeypatch.setattr(figures, "hopper_cluster", degraded_cluster)
        check = check_golden("fig07", directory=tmp_path)
        assert not check.ok
        assert any("makespan" in failure for failure in check.failures), check.report()

    def test_perturbing_a_fingerprinted_constant_fails_the_check(
        self, tmp_path, monkeypatch
    ):
        record_golden("fig08", directory=tmp_path)
        original = code_fingerprint()
        bigger_gpu = dataclasses.replace(
            gpu_module.HOPPER_80GB, memory_bytes=gpu_module.HOPPER_80GB.memory_bytes * 2
        )
        try:
            monkeypatch.setattr(gpu_module, "HOPPER_80GB", bigger_gpu)
            code_fingerprint.cache_clear()  # memoized per process
            assert code_fingerprint() != original
            check = check_golden("fig08", directory=tmp_path)
            assert not check.ok
            assert any("fingerprint" in failure for failure in check.failures)
        finally:
            monkeypatch.undo()
            code_fingerprint.cache_clear()

    def test_report_points_at_regeneration(self, tmp_path):
        record_golden("unit", directory=tmp_path, definition=_definition({"a": 1.0}))
        check = check_golden(
            "unit", directory=tmp_path, definition=_definition({"a": 2.0})
        )
        assert "sweep golden --regenerate" in check.report()


class TestRegistryHygiene:
    def test_every_golden_has_a_description(self):
        for name, definition in golden_module.GOLDEN_REGISTRY.items():
            assert definition.name == name
            assert definition.description
